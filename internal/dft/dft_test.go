package dft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDFTKnownValues(t *testing.T) {
	// Constant signal: all energy in the DC bin.
	c := DFT([]float64{2, 2, 2, 2})
	if !almostEq(real(c[0]), 4, 1e-12) || !almostEq(imag(c[0]), 0, 1e-12) {
		t.Errorf("DC = %v, want 4 (2*sqrt(4))", c[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(c[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, c[k])
		}
	}
	// Empty input.
	if out := DFT(nil); len(out) != 0 {
		t.Errorf("DFT(nil) = %v", out)
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		slow := DFT(vals)
		fast, err := FFT(vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for k := range slow {
			if cmplx.Abs(slow[k]-fast[k]) > 1e-9 {
				t.Fatalf("n=%d bin %d: DFT %v vs FFT %v", n, k, slow[k], fast[k])
			}
		}
	}
}

func TestFFTErrors(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FFT(make([]float64, 3)); err == nil {
		t.Error("non power-of-two accepted")
	}
	if _, err := InverseFFT(nil); err == nil {
		t.Error("inverse empty accepted")
	}
	if _, err := InverseFFT(make([]complex128, 5)); err == nil {
		t.Error("inverse non power-of-two accepted")
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
	}
	coeffs, err := FFT(vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InverseFFT(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if !almostEq(back[i], vals[i], 1e-9) {
			t.Fatalf("round trip[%d] = %g, want %g", i, back[i], vals[i])
		}
	}
}

// Parseval: orthonormal transform preserves energy.
func TestParsevalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		if n > 64 {
			n = 64
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e5)
		}
		coeffs := DFT(vals)
		var e1, e2 float64
		for i := range vals {
			e1 += vals[i] * vals[i]
			e2 += real(coeffs[i])*real(coeffs[i]) + imag(coeffs[i])*imag(coeffs[i])
		}
		return almostEq(e1, e2, 1e-6*(1+e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransformDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{7, 8} { // odd takes DFT path, power of two takes FFT
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		got := Transform(vals)
		want := DFT(vals)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d bin %d mismatch", n, k)
			}
		}
	}
}

func TestFeatures(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	f, err := Features(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 6 {
		t.Fatalf("feature length %d, want 6", len(f))
	}
	coeffs := Transform(vals)
	for i := 0; i < 3; i++ {
		if !almostEq(f[2*i], real(coeffs[i]), 1e-12) || !almostEq(f[2*i+1], imag(coeffs[i]), 1e-12) {
			t.Errorf("feature %d mismatch", i)
		}
	}
	if _, err := Features(vals, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k beyond length pads with zeros.
	long, err := Features([]float64{1, 2}, 5)
	if err != nil || len(long) != 10 {
		t.Fatalf("padded features: %v %v", long, err)
	}
	for i := 4; i < 10; i++ {
		if long[i] != 0 {
			t.Errorf("pad feature[%d] = %g", i, long[i])
		}
	}
}

func TestFeatureDistanceLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		n := 64
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64() * 5
			b[i] = rng.NormFloat64() * 5
		}
		var trueD float64
		for i := range a {
			d := a[i] - b[i]
			trueD += d * d
		}
		trueD = math.Sqrt(trueD)
		for _, k := range []int{1, 2, 4, 8} {
			fa, _ := Features(a, k)
			fb, _ := Features(b, k)
			fd, err := FeatureDistance(fa, fb)
			if err != nil {
				t.Fatal(err)
			}
			if fd > trueD+1e-9 {
				t.Fatalf("k=%d: feature distance %g exceeds true distance %g (false dismissal possible)", k, fd, trueD)
			}
		}
	}
	if _, err := FeatureDistance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMainFrequency(t *testing.T) {
	// Pure sine of period 16 over 128 samples lands in bin 128/16 = 8.
	s := synth.Sine(128, 3, 16, 0)
	bin, mag := MainFrequency(s.Values())
	if bin != 8 {
		t.Errorf("main frequency bin = %d, want 8", bin)
	}
	if mag <= 0 {
		t.Errorf("magnitude = %g", mag)
	}
	// Dilating the sine (doubling the period) halves the bin — the §3
	// argument that frequency comparison misses dilation similarity.
	s2 := synth.Sine(128, 3, 32, 0)
	bin2, _ := MainFrequency(s2.Values())
	if bin2 != 4 {
		t.Errorf("dilated main frequency bin = %d, want 4", bin2)
	}
}

func TestFIndexBasics(t *testing.T) {
	ix, err := NewFIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFIndex(0); err == nil {
		t.Error("k=0 accepted")
	}
	base := synth.Sine(64, 10, 16, 0)
	near := base.ShiftValue(0.1)
	far := base.ShiftValue(50)
	for id, s := range map[string]seq.Sequence{"base": base, "near": near, "far": far} {
		if err := ix.Add(id, s); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Add("base", base); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := ix.Add("short", synth.Sine(32, 1, 8, 0)); err == nil {
		t.Error("length mismatch accepted")
	}

	matches, candidates, err := ix.Query(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].ID != "base" || matches[1].ID != "near" {
		t.Errorf("order: %v", matches)
	}
	if matches[0].Distance != 0 {
		t.Errorf("self distance %g", matches[0].Distance)
	}
	if candidates < 2 {
		t.Errorf("candidates = %d", candidates)
	}
	if _, _, err := ix.Query(synth.Sine(32, 1, 8, 0), 5); err == nil {
		t.Error("bad query length accepted")
	}
	if _, _, err := ix.Query(base, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

// The F-index may produce false candidates but never false dismissals:
// query results equal brute-force results.
func TestFIndexNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ix, _ := NewFIndex(2)
	n := 32
	stored := make(map[string][]float64)
	for i := 0; i < 40; i++ {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = rng.NormFloat64() * 10
		}
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := ix.Add(id, seq.New(vals)); err != nil {
			t.Fatal(err)
		}
		stored[id] = vals
	}
	q := make([]float64, n)
	for j := range q {
		q[j] = rng.NormFloat64() * 10
	}
	qs := seq.New(q)
	for _, eps := range []float64{5, 20, 50, 80} {
		matches, _, err := ix.Query(qs, eps)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool)
		for _, m := range matches {
			got[m.ID] = true
		}
		for id, vals := range stored {
			var d float64
			for j := range vals {
				diff := vals[j] - q[j]
				d += diff * diff
			}
			want := math.Sqrt(d) <= eps
			if got[id] != want {
				t.Errorf("eps=%g id=%s: index says %v, brute force says %v", eps, id, got[id], want)
			}
		}
	}
}

func TestSubsequenceMatch(t *testing.T) {
	// Plant the query inside a longer sequence at a known offset.
	q := synth.Sine(32, 5, 8, 0)
	long := make(seq.Sequence, 0, 200)
	flat := synth.Const(80, 0)
	long = append(long, flat...)
	for _, p := range q {
		long = append(long, seq.Point{T: float64(len(long)), V: p.V})
	}
	tail := synth.Const(88, 0)
	for _, p := range tail {
		long = append(long, seq.Point{T: float64(len(long)), V: p.V})
	}

	hits, err := SubsequenceMatch("ecg1", long, q, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Offset == 80 {
			found = true
			if h.Distance > 1e-9 {
				t.Errorf("planted window distance %g", h.Distance)
			}
		}
	}
	if !found {
		t.Fatalf("planted occurrence at offset 80 not found; hits = %v", hits)
	}

	if _, err := SubsequenceMatch("x", long, nil, 4, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := SubsequenceMatch("x", long, q, 4, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if hits, err := SubsequenceMatch("x", q[:10], q, 4, 1); err != nil || hits != nil {
		t.Errorf("stored shorter than query: %v %v", hits, err)
	}
}
