package dft

import (
	"fmt"
	"math"
	"sort"
)

// VPTree is a vantage-point tree (Yianilos 1993) over a columnar set of
// feature vectors: the metric-tree stand-in for the R*-tree F-index of
// Agrawal, Faloutsos & Swami (1993). Points live in one flat []float64
// (row i occupies pts[i*dim : (i+1)*dim]) and the tree stores only int32
// ordinals into it, so a range search touches a handful of contiguous
// rows instead of chasing per-id map entries.
//
// Every internal node holds one vantage point, the largest distance of
// its inside subtree's points to that vantage (inR) and the smallest
// distance of its outside subtree's (outR). A range query around q with
// radius eps computes d = ‖q - vp‖ once per visited node and descends a
// side only when the triangle inequality says it can still contain a
// point within eps — candidate generation is O(log n)-ish for selective
// radii instead of the linear feature scan's O(n).
//
// Construction is deterministic (first-ordinal vantage selection, ties
// broken by ordinal), so two builds over the same rows prune identically.
// The tree is immutable after Build; owners layer deletions and late
// insertions on top (see the core feature store) and rebuild when those
// overlays grow.
type VPTree struct {
	dim   int
	pts   []float64
	nodes []vpNode
	ords  []int32 // leaf spans, bulk storage
	root  int32
}

// vpNode is one tree node. Leaves (vp == -1) hold a span of ordinals in
// the tree's ords array; internal nodes hold the vantage ordinal, the two
// pruning radii and child node indexes (-1 = absent).
type vpNode struct {
	vp      int32
	inR     float64
	outR    float64
	inside  int32
	outside int32
	lo, hi  int32
}

// DefaultVPLeaf is the leaf capacity used when a builder passes 0: small
// enough that pruning starts early, large enough that the last levels run
// as a tight linear loop over contiguous rows.
const DefaultVPLeaf = 16

// NewVPTree builds a vantage-point tree over n = len(pts)/dim points
// stored columnar in pts. leaf is the maximum leaf size (0 = DefaultVPLeaf).
// The tree keeps a reference to pts; callers must not mutate rows the
// tree covers afterwards.
func NewVPTree(pts []float64, dim, leaf int) (*VPTree, error) {
	if dim < 1 {
		return nil, fmt.Errorf("dft: vp-tree dimension %d must be >= 1", dim)
	}
	if len(pts)%dim != 0 {
		return nil, fmt.Errorf("dft: %d point floats do not tile dimension %d", len(pts), dim)
	}
	if leaf == 0 {
		leaf = DefaultVPLeaf
	}
	if leaf < 1 {
		return nil, fmt.Errorf("dft: vp-tree leaf size %d must be >= 1", leaf)
	}
	n := len(pts) / dim
	t := &VPTree{dim: dim, pts: pts, root: -1}
	if n == 0 {
		return t, nil
	}
	ords := make([]int32, n)
	for i := range ords {
		ords[i] = int32(i)
	}
	t.nodes = make([]vpNode, 0, 2*(n/(leaf+1))+1)
	t.ords = make([]int32, 0, n)
	t.root = t.build(ords, make([]float64, n), leaf)
	return t, nil
}

// Len reports the number of indexed points.
func (t *VPTree) Len() int { return len(t.pts) / t.dim }

// row returns the columnar row of ordinal o.
func (t *VPTree) row(o int32) []float64 {
	return t.pts[int(o)*t.dim : (int(o)+1)*t.dim]
}

// pointDist is the tree's metric: Euclidean distance between two rows of
// equal, pre-validated width — the same accumulation order as
// FeatureDistance, so tree and linear-scan candidate sets agree
// bit-for-bit.
func pointDist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// vpSplit pairs ordinals with their distance to the current vantage for
// the median split.
type vpSplit struct {
	ords []int32
	d    []float64
}

func (s vpSplit) Len() int { return len(s.ords) }
func (s vpSplit) Less(i, j int) bool {
	if s.d[i] != s.d[j] {
		return s.d[i] < s.d[j]
	}
	return s.ords[i] < s.ords[j]
}
func (s vpSplit) Swap(i, j int) {
	s.ords[i], s.ords[j] = s.ords[j], s.ords[i]
	s.d[i], s.d[j] = s.d[j], s.d[i]
}

// build recursively constructs the subtree over ords, reusing dscratch
// (cap >= len(ords)) for distance staging, and returns its node index.
func (t *VPTree) build(ords []int32, dscratch []float64, leaf int) int32 {
	if len(ords) <= leaf {
		lo := int32(len(t.ords))
		t.ords = append(t.ords, ords...)
		t.nodes = append(t.nodes, vpNode{vp: -1, inside: -1, outside: -1, lo: lo, hi: lo + int32(len(ords))})
		return int32(len(t.nodes)) - 1
	}
	vp := ords[0]
	rest := ords[1:]
	d := dscratch[:len(rest)]
	vpRow := t.row(vp)
	for i, o := range rest {
		d[i] = pointDist(vpRow, t.row(o))
	}
	sort.Sort(vpSplit{rest, d})
	h := (len(rest) + 1) / 2
	node := vpNode{vp: vp, inside: -1, outside: -1, inR: d[h-1], outR: math.Inf(1)}
	if h < len(rest) {
		node.outR = d[h]
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)
	inside := t.build(rest[:h], dscratch, leaf)
	outside := int32(-1)
	if h < len(rest) {
		outside = t.build(rest[h:], dscratch, leaf)
	}
	t.nodes[idx].inside, t.nodes[idx].outside = inside, outside
	return idx
}

// vpTraverseSlack widens the triangle-inequality descent tests by a
// floating-point whisker so accumulated rounding in the node distances can
// never skip a subtree holding a boundary point. It widens traversal only:
// whether a visited point becomes a result is still decided by the exact
// d <= eps comparison, so the reported set matches a linear scan's.
func vpTraverseSlack(x float64) float64 { return x*(1+1e-9) + 1e-12 }

// Search visits every indexed point whose Euclidean distance to q is at
// most eps, invoking found(ordinal, distance) for each (in deterministic
// tree order, not sorted by distance). It returns the number of distance
// computations performed — the "vectors examined" measure a caller's
// query statistics report; examined - |found| points were examined but
// rejected, and everything else was pruned wholesale by the tree.
func (t *VPTree) Search(q []float64, eps float64, found func(ord int32, d float64)) (examined int) {
	if t.root < 0 || len(q) != t.dim {
		return 0
	}
	return t.search(t.root, q, eps, found)
}

// All comparisons in the traversals below are inverted ("not provably
// excludable") so a NaN distance — a non-finite point or query — falls
// through to visitation and to the found callback rather than silently
// pruning subtrees or dropping points the linear feature scan would
// have handed to exact verification. For finite data the decisions are
// identical.

// SearchShrink is Search with a caller-controlled radius: radius() is
// re-read at every node entry (and after every reported point), so a
// caller that tightens it as verified results accumulate — the kNN
// best-so-far loop — prunes subtrees the initial radius would have
// visited. A negative radius aborts the traversal immediately, which
// doubles as the cooperative-cancellation hook. With a constant radius
// the visited set and examined count are identical to Search's.
func (t *VPTree) SearchShrink(q []float64, radius func() float64, found func(ord int32, d float64)) (examined int) {
	if t.root < 0 || len(q) != t.dim {
		return 0
	}
	return t.searchShrink(t.root, q, radius, found)
}

func (t *VPTree) searchShrink(ni int32, q []float64, radius func() float64, found func(int32, float64)) int {
	eps := radius()
	if eps < 0 {
		return 0
	}
	node := &t.nodes[ni]
	if node.vp < 0 { // leaf
		examined := 0
		for _, o := range t.ords[node.lo:node.hi] {
			d := pointDist(q, t.row(o))
			examined++
			if !(d > eps) {
				found(o, d)
				if eps = radius(); eps < 0 {
					return examined
				}
			}
		}
		return examined
	}
	d := pointDist(q, t.row(node.vp))
	examined := 1
	if !(d > eps) {
		found(node.vp, d)
		if eps = radius(); eps < 0 {
			return examined
		}
	}
	// Same inverted, NaN-robust descent tests as search (see below).
	if node.inside >= 0 && !(d > vpTraverseSlack(node.inR+eps)) {
		examined += t.searchShrink(node.inside, q, radius, found)
	}
	if node.outside >= 0 && !(vpTraverseSlack(d+eps) < node.outR) {
		examined += t.searchShrink(node.outside, q, radius, found)
	}
	return examined
}

func (t *VPTree) search(ni int32, q []float64, eps float64, found func(int32, float64)) int {
	node := &t.nodes[ni]
	if node.vp < 0 { // leaf
		examined := 0
		for _, o := range t.ords[node.lo:node.hi] {
			d := pointDist(q, t.row(o))
			examined++
			if !(d > eps) {
				found(o, d)
			}
		}
		return examined
	}
	d := pointDist(q, t.row(node.vp))
	examined := 1
	if !(d > eps) {
		found(node.vp, d)
	}
	if node.inside >= 0 && !(d > vpTraverseSlack(node.inR+eps)) {
		examined += t.search(node.inside, q, eps, found)
	}
	if node.outside >= 0 && !(vpTraverseSlack(d+eps) < node.outR) {
		examined += t.search(node.outside, q, eps, found)
	}
	return examined
}
