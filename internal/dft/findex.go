package dft

import (
	"fmt"
	"sort"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// FIndex is the whole-sequence similarity index of Agrawal, Faloutsos &
// Swami (1993): each stored sequence is mapped to the first-k-DFT-
// coefficient feature space; a range query filters by feature distance
// (which cannot cause false dismissals) and then verifies candidates
// against the raw sequences with the true Euclidean distance.
//
// The original work stores the feature points in an R*-tree; this
// implementation scans the feature table, which preserves the method's
// filtering semantics (identical candidate sets) at laptop scale.
type FIndex struct {
	k       int
	ids     []string
	raws    map[string]seq.Sequence
	feats   map[string][]float64
	queryLn int
}

// NewFIndex creates an index using the first k DFT coefficients
// (a 2k-dimensional feature space). All indexed sequences must share the
// same length, a requirement inherited from the baseline method.
func NewFIndex(k int) (*FIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("dft: FIndex needs k >= 1, got %d", k)
	}
	return &FIndex{
		k:     k,
		raws:  make(map[string]seq.Sequence),
		feats: make(map[string][]float64),
	}, nil
}

// Len reports the number of indexed sequences.
func (ix *FIndex) Len() int { return len(ix.ids) }

// Add indexes the sequence under id. It returns an error for duplicate ids
// or for a length mismatch with previously added sequences.
func (ix *FIndex) Add(id string, s seq.Sequence) error {
	if _, dup := ix.raws[id]; dup {
		return fmt.Errorf("dft: duplicate sequence id %q", id)
	}
	if ix.queryLn == 0 {
		if len(s) == 0 {
			return fmt.Errorf("dft: cannot index empty sequence %q", id)
		}
		ix.queryLn = len(s)
	} else if len(s) != ix.queryLn {
		return fmt.Errorf("dft: sequence %q has length %d, index requires %d", id, len(s), ix.queryLn)
	}
	f, err := Features(s.Values(), ix.k)
	if err != nil {
		return err
	}
	ix.ids = append(ix.ids, id)
	ix.raws[id] = s
	ix.feats[id] = f
	return nil
}

// Match is one similarity-query result.
type Match struct {
	ID       string
	Distance float64 // true Euclidean distance to the query
}

// Query returns all sequences within Euclidean distance eps of q, sorted by
// distance. Candidates reports how many sequences survived the feature
// filter and needed raw verification (the measure of filter quality).
func (ix *FIndex) Query(q seq.Sequence, eps float64) (matches []Match, candidates int, err error) {
	if len(q) != ix.queryLn {
		return nil, 0, fmt.Errorf("dft: query length %d, index requires %d", len(q), ix.queryLn)
	}
	if eps < 0 {
		return nil, 0, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), ix.k)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ix.ids {
		fd, err := FeatureDistance(qf, ix.feats[id])
		if err != nil {
			return nil, 0, err
		}
		if fd > eps {
			continue // safe: feature distance lower-bounds true distance
		}
		candidates++
		d, err := dist.L2(q, ix.raws[id])
		if err != nil {
			return nil, 0, err
		}
		if d <= eps {
			matches = append(matches, Match{ID: id, Distance: d})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].ID < matches[j].ID
	})
	return matches, candidates, nil
}

// WindowMatch is one subsequence-matching hit: the window of the stored
// sequence starting at Offset matches the query within the tolerance.
type WindowMatch struct {
	ID       string
	Offset   int
	Distance float64
}

// SubsequenceMatch implements the FRM94-style sliding-window search over a
// long stored sequence: every window of len(q) samples is compared to q,
// with the first-k-coefficient feature distance as the no-false-dismissal
// prefilter and true Euclidean distance as the verifier. It returns hits in
// offset order. k is the feature count; eps the Euclidean tolerance.
func SubsequenceMatch(id string, stored, q seq.Sequence, k int, eps float64) ([]WindowMatch, error) {
	w := len(q)
	if w == 0 {
		return nil, fmt.Errorf("dft: empty query")
	}
	if len(stored) < w {
		return nil, nil
	}
	if eps < 0 {
		return nil, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), k)
	if err != nil {
		return nil, err
	}
	var out []WindowMatch
	qv := q.Values()
	buf := make([]float64, w)
	for off := 0; off+w <= len(stored); off++ {
		for i := 0; i < w; i++ {
			buf[i] = stored[off+i].V
		}
		wf, err := Features(buf, k)
		if err != nil {
			return nil, err
		}
		fd, err := FeatureDistance(qf, wf)
		if err != nil {
			return nil, err
		}
		if fd > eps {
			continue
		}
		d, err := dist.L2Values(buf, qv)
		if err != nil {
			return nil, err
		}
		if d <= eps {
			out = append(out, WindowMatch{ID: id, Offset: off, Distance: d})
		}
	}
	return out, nil
}
