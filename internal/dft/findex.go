package dft

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// FIndex is the whole-sequence similarity index of Agrawal, Faloutsos &
// Swami (1993): each stored sequence is mapped to the first-k-DFT-
// coefficient feature space; a range query filters by feature distance
// (which cannot cause false dismissals) and then verifies candidates
// against the raw sequences with the true Euclidean distance.
//
// The original work stores the feature points in an R*-tree. This
// implementation keeps them in a flat columnar table — one contiguous
// []float64 of 2k-wide rows plus parallel id and raw-sequence tables —
// and searches them through a vantage-point tree (see VPTree), so
// candidate generation is sub-linear in the number of stored sequences
// while preserving the method's filtering semantics exactly (identical
// candidate sets to a linear feature scan).
//
// FIndex is not safe for concurrent use; Query lazily (re)builds the
// vantage-point tree after mutations.
type FIndex struct {
	k       int
	queryLn int
	dim     int // feature row width, 2k

	// Columnar storage: row i of feats (feats[i*dim:(i+1)*dim]) is the
	// feature vector of ids[i] / raws[i]; byID maps an id back to its
	// ordinal. Remove swap-deletes rows, so ordinals are not stable
	// across mutations.
	ids   []string
	raws  []seq.Sequence
	feats []float64
	byID  map[string]int

	// tree accelerates Query over rows [0, treeN); rows appended after
	// the last build are scanned linearly until the tail outgrows its
	// budget, when the tree is dropped and Query rebuilds on demand
	// (Remove swap-deletes rows the tree may reference, so it always
	// invalidates). disableTree pins Query to the linear columnar scan —
	// the baseline the benchmarks and equivalence tests compare the tree
	// against.
	tree        *VPTree
	treeN       int
	disableTree bool
}

// NewFIndex creates an index using the first k DFT coefficients
// (a 2k-dimensional feature space). All indexed sequences must share the
// same length, a requirement inherited from the baseline method.
func NewFIndex(k int) (*FIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("dft: FIndex needs k >= 1, got %d", k)
	}
	return &FIndex{k: k, dim: 2 * k, byID: make(map[string]int)}, nil
}

// Len reports the number of indexed sequences.
func (ix *FIndex) Len() int { return len(ix.ids) }

// K returns the configured coefficient count.
func (ix *FIndex) K() int { return ix.k }

// IDs returns the indexed sequence ids in sorted order.
func (ix *FIndex) IDs() []string {
	out := append([]string(nil), ix.ids...)
	slices.Sort(out)
	return out
}

// append adds one validated sequence and its feature row to the columnar
// tables. An existing tree stays up — the new row lands in the linearly
// scanned tail — until the tail outgrows a fraction of the tree's
// coverage, at which point the tree is dropped for a rebuild on the next
// query.
func (ix *FIndex) append(id string, s seq.Sequence, f []float64) {
	ix.byID[id] = len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.raws = append(ix.raws, s)
	ix.feats = append(ix.feats, f...)
	if ix.tree != nil && len(ix.ids)-ix.treeN > 32+ix.treeN/4 {
		ix.invalidateTree()
	}
}

// invalidateTree drops the tree; Query rebuilds on demand.
func (ix *FIndex) invalidateTree() {
	ix.tree, ix.treeN = nil, 0
}

// Add indexes the sequence under id. It returns an error for duplicate ids
// or for a length mismatch with previously added sequences.
func (ix *FIndex) Add(id string, s seq.Sequence) error {
	if _, dup := ix.byID[id]; dup {
		return fmt.Errorf("dft: duplicate sequence id %q", id)
	}
	if ix.queryLn == 0 {
		if len(s) == 0 {
			return fmt.Errorf("dft: cannot index empty sequence %q", id)
		}
		ix.queryLn = len(s)
	} else if len(s) != ix.queryLn {
		return fmt.Errorf("dft: sequence %q has length %d, index requires %d", id, len(s), ix.queryLn)
	}
	f, err := Features(s.Values(), ix.k)
	if err != nil {
		return err
	}
	ix.append(id, s, f)
	return nil
}

// FItem names one sequence of a batch add.
type FItem struct {
	ID  string
	Seq seq.Sequence
}

// AddBatch indexes many sequences at once. The batch is validated as a
// whole before anything is added — duplicate ids (within the batch or
// against the index) and length mismatches reject the entire batch, so a
// failed AddBatch leaves the index unchanged.
func (ix *FIndex) AddBatch(items []FItem) error {
	want := ix.queryLn
	seen := make(map[string]struct{}, len(items))
	for _, it := range items {
		if _, dup := ix.byID[it.ID]; dup {
			return fmt.Errorf("dft: duplicate sequence id %q", it.ID)
		}
		if _, dup := seen[it.ID]; dup {
			return fmt.Errorf("dft: id %q repeated within batch", it.ID)
		}
		seen[it.ID] = struct{}{}
		if len(it.Seq) == 0 {
			return fmt.Errorf("dft: cannot index empty sequence %q", it.ID)
		}
		if want == 0 {
			want = len(it.Seq)
		} else if len(it.Seq) != want {
			return fmt.Errorf("dft: sequence %q has length %d, index requires %d", it.ID, len(it.Seq), want)
		}
	}
	feats := make([][]float64, len(items))
	for i, it := range items {
		f, err := Features(it.Seq.Values(), ix.k)
		if err != nil {
			return err
		}
		feats[i] = f
	}
	ix.queryLn = want
	for i, it := range items {
		ix.append(it.ID, it.Seq, feats[i])
	}
	return nil
}

// Remove drops a sequence from the index, reporting whether it was
// present. Removing the last sequence frees the length constraint, so an
// emptied index accepts sequences of a new length. The vacated columnar
// row is filled by the last row (swap-delete), keeping the tables dense.
func (ix *FIndex) Remove(id string) bool {
	ord, ok := ix.byID[id]
	if !ok {
		return false
	}
	last := len(ix.ids) - 1
	if ord != last {
		ix.ids[ord] = ix.ids[last]
		ix.raws[ord] = ix.raws[last]
		copy(ix.feats[ord*ix.dim:(ord+1)*ix.dim], ix.feats[last*ix.dim:(last+1)*ix.dim])
		ix.byID[ix.ids[ord]] = ord
	}
	ix.ids = ix.ids[:last]
	ix.raws[last] = nil
	ix.raws = ix.raws[:last]
	ix.feats = ix.feats[:last*ix.dim]
	delete(ix.byID, id)
	// The swap rewrote a row the tree may cover, so the tree cannot be
	// kept (unlike appends, which only grow the tail).
	ix.invalidateTree()
	if len(ix.ids) == 0 {
		ix.queryLn = 0
	}
	return true
}

// Binary codec. Layout (all integers little-endian):
//
//	magic   "FIX1" (4 bytes)
//	k       u32
//	queryLn u32
//	count   u32
//	per sequence (in sorted id order):
//	  idLen u16, id bytes
//	  queryLn × (t f64, v f64) raw samples
//
// Feature vectors are recomputed on decode: they are pure functions of
// the raw samples and k, so storing them would only create a corruption
// channel the decoder would have to cross-validate anyway. The codec is
// independent of the in-memory columnar layout, so FIX1 blobs written
// before the columnar store decode unchanged.
var fixMagic = [4]byte{'F', 'I', 'X', '1'}

// MarshalBinary encodes the index deterministically (sorted id order).
func (ix *FIndex) MarshalBinary() ([]byte, error) {
	ids := ix.IDs()
	size := 4 + 4 + 4 + 4
	for _, id := range ids {
		size += 2 + len(id) + 16*ix.queryLn
	}
	out := make([]byte, 0, size)
	out = append(out, fixMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.k))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.queryLn))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		if len(id) > math.MaxUint16 {
			return nil, fmt.Errorf("dft: marshal: id too long (%d bytes)", len(id))
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(id)))
		out = append(out, id...)
		for _, p := range ix.raws[ix.byID[id]] {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.T))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.V))
		}
	}
	return out, nil
}

// UnmarshalBinary decodes an index encoded by MarshalBinary into ix,
// replacing its contents. Feature vectors are rebuilt from the decoded
// raw samples.
func (ix *FIndex) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("dft: unmarshal: truncated header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != fixMagic {
		return fmt.Errorf("dft: unmarshal: bad magic %q", data[:4])
	}
	k := int(binary.LittleEndian.Uint32(data[4:8]))
	queryLn := int(binary.LittleEndian.Uint32(data[8:12]))
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	if k < 1 {
		return fmt.Errorf("dft: unmarshal: invalid coefficient count %d", k)
	}
	// Sanity bounds: any plausible index fits comfortably (k beyond the
	// sequence length only pads features with zeros), and they keep a
	// hostile header from provoking huge feature allocations.
	const maxCoeffs, maxTotalCoeffs = 1 << 12, 1 << 22
	if k > maxCoeffs {
		return fmt.Errorf("dft: unmarshal: implausible coefficient count %d", k)
	}
	if count > 0 && queryLn < 1 {
		return fmt.Errorf("dft: unmarshal: %d sequences with invalid length %d", count, queryLn)
	}
	if count*k > maxTotalCoeffs {
		return fmt.Errorf("dft: unmarshal: implausible index size (%d sequences × %d coefficients)", count, k)
	}
	// Each sequence needs at least 2 + 16*queryLn bytes: reject counts the
	// payload cannot possibly hold before allocating for them.
	rest := data[16:]
	if queryLn > 0 && count > len(rest)/(2+16*queryLn) {
		return fmt.Errorf("dft: unmarshal: count %d exceeds payload", count)
	}
	dec := &FIndex{
		k:       k,
		dim:     2 * k,
		queryLn: queryLn,
		byID:    make(map[string]int, count),
	}
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return fmt.Errorf("dft: unmarshal: truncated id length (sequence %d)", i)
		}
		idLen := int(binary.LittleEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < idLen {
			return fmt.Errorf("dft: unmarshal: truncated id (sequence %d)", i)
		}
		id := string(rest[:idLen])
		rest = rest[idLen:]
		if id == "" {
			return fmt.Errorf("dft: unmarshal: empty id (sequence %d)", i)
		}
		if _, dup := dec.byID[id]; dup {
			return fmt.Errorf("dft: unmarshal: duplicate id %q", id)
		}
		if len(rest) < 16*queryLn {
			return fmt.Errorf("dft: unmarshal: truncated samples for %q", id)
		}
		s := make(seq.Sequence, queryLn)
		for j := 0; j < queryLn; j++ {
			s[j].T = math.Float64frombits(binary.LittleEndian.Uint64(rest[16*j:]))
			s[j].V = math.Float64frombits(binary.LittleEndian.Uint64(rest[16*j+8:]))
		}
		rest = rest[16*queryLn:]
		f, err := Features(s.Values(), k)
		if err != nil {
			return fmt.Errorf("dft: unmarshal %q: %w", id, err)
		}
		dec.append(id, s, f)
	}
	if len(rest) != 0 {
		return fmt.Errorf("dft: unmarshal: %d trailing bytes", len(rest))
	}
	*ix = *dec
	return nil
}

// Match is one similarity-query result.
type Match struct {
	ID       string
	Distance float64 // true Euclidean distance to the query
}

// vpBuildMin is the population below which Query scans the feature table
// linearly instead of building a tree: at these sizes the scan is a
// handful of contiguous rows and the tree adds only indirection.
const vpBuildMin = 2 * DefaultVPLeaf

// ensureTree (re)builds the vantage-point tree when it is stale and the
// population justifies one.
func (ix *FIndex) ensureTree() {
	if ix.tree != nil || ix.disableTree || len(ix.ids) < vpBuildMin {
		return
	}
	t, err := NewVPTree(ix.feats, ix.dim, 0)
	if err != nil {
		return // dim is validated at construction; defensive only
	}
	ix.tree, ix.treeN = t, len(ix.ids)
}

// Query returns all sequences within Euclidean distance eps of q, sorted by
// distance. Candidates reports how many sequences survived the feature
// filter and needed raw verification (the measure of filter quality).
//
// Candidate generation runs through the vantage-point tree (identical
// candidate sets to a linear feature scan, sub-linear work); each
// candidate is then verified with an early-abandoning Euclidean kernel
// that compares squared partial sums against eps² and bails mid-loop.
func (ix *FIndex) Query(q seq.Sequence, eps float64) (matches []Match, candidates int, err error) {
	if len(q) != ix.queryLn {
		return nil, 0, fmt.Errorf("dft: query length %d, index requires %d", len(q), ix.queryLn)
	}
	if eps < 0 {
		return nil, 0, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), ix.k)
	if err != nil {
		return nil, 0, err
	}
	verify := func(ord int32) error {
		candidates++
		d, within, err := dist.DistanceWithin(dist.Euclidean, q, ix.raws[ord], eps)
		if err != nil {
			return err
		}
		if within {
			matches = append(matches, Match{ID: ix.ids[ord], Distance: d})
		}
		return nil
	}
	ix.ensureTree()
	if ix.tree != nil {
		var verr error
		ix.tree.Search(qf, eps, func(ord int32, _ float64) {
			if verr == nil {
				verr = verify(ord)
			}
		})
		if verr != nil {
			return nil, 0, verr
		}
	}
	// Rows past the tree's coverage (all rows when there is no tree) are
	// scanned linearly. Row widths are fixed by construction (every row
	// is 2k wide), so the scan validates nothing per record: one distance
	// per row.
	for ord := ix.treeN; ord < len(ix.ids); ord++ {
		fd := pointDist(qf, ix.feats[ord*ix.dim:(ord+1)*ix.dim])
		if fd > eps {
			continue // safe: feature distance lower-bounds true distance
		}
		if err := verify(int32(ord)); err != nil {
			return nil, 0, err
		}
	}
	slices.SortFunc(matches, func(a, b Match) int {
		switch {
		case a.Distance != b.Distance:
			if a.Distance < b.Distance {
				return -1
			}
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return matches, candidates, nil
}
