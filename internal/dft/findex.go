package dft

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// FIndex is the whole-sequence similarity index of Agrawal, Faloutsos &
// Swami (1993): each stored sequence is mapped to the first-k-DFT-
// coefficient feature space; a range query filters by feature distance
// (which cannot cause false dismissals) and then verifies candidates
// against the raw sequences with the true Euclidean distance.
//
// The original work stores the feature points in an R*-tree; this
// implementation scans the feature table, which preserves the method's
// filtering semantics (identical candidate sets) at laptop scale.
type FIndex struct {
	k       int
	ids     []string
	raws    map[string]seq.Sequence
	feats   map[string][]float64
	queryLn int
}

// NewFIndex creates an index using the first k DFT coefficients
// (a 2k-dimensional feature space). All indexed sequences must share the
// same length, a requirement inherited from the baseline method.
func NewFIndex(k int) (*FIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("dft: FIndex needs k >= 1, got %d", k)
	}
	return &FIndex{
		k:     k,
		raws:  make(map[string]seq.Sequence),
		feats: make(map[string][]float64),
	}, nil
}

// Len reports the number of indexed sequences.
func (ix *FIndex) Len() int { return len(ix.ids) }

// Add indexes the sequence under id. It returns an error for duplicate ids
// or for a length mismatch with previously added sequences.
func (ix *FIndex) Add(id string, s seq.Sequence) error {
	if _, dup := ix.raws[id]; dup {
		return fmt.Errorf("dft: duplicate sequence id %q", id)
	}
	if ix.queryLn == 0 {
		if len(s) == 0 {
			return fmt.Errorf("dft: cannot index empty sequence %q", id)
		}
		ix.queryLn = len(s)
	} else if len(s) != ix.queryLn {
		return fmt.Errorf("dft: sequence %q has length %d, index requires %d", id, len(s), ix.queryLn)
	}
	f, err := Features(s.Values(), ix.k)
	if err != nil {
		return err
	}
	ix.ids = append(ix.ids, id)
	ix.raws[id] = s
	ix.feats[id] = f
	return nil
}

// K returns the configured coefficient count.
func (ix *FIndex) K() int { return ix.k }

// IDs returns the indexed sequence ids in sorted order.
func (ix *FIndex) IDs() []string {
	out := append([]string(nil), ix.ids...)
	sort.Strings(out)
	return out
}

// FItem names one sequence of a batch add.
type FItem struct {
	ID  string
	Seq seq.Sequence
}

// AddBatch indexes many sequences at once. The batch is validated as a
// whole before anything is added — duplicate ids (within the batch or
// against the index) and length mismatches reject the entire batch, so a
// failed AddBatch leaves the index unchanged.
func (ix *FIndex) AddBatch(items []FItem) error {
	want := ix.queryLn
	seen := make(map[string]struct{}, len(items))
	for _, it := range items {
		if _, dup := ix.raws[it.ID]; dup {
			return fmt.Errorf("dft: duplicate sequence id %q", it.ID)
		}
		if _, dup := seen[it.ID]; dup {
			return fmt.Errorf("dft: id %q repeated within batch", it.ID)
		}
		seen[it.ID] = struct{}{}
		if len(it.Seq) == 0 {
			return fmt.Errorf("dft: cannot index empty sequence %q", it.ID)
		}
		if want == 0 {
			want = len(it.Seq)
		} else if len(it.Seq) != want {
			return fmt.Errorf("dft: sequence %q has length %d, index requires %d", it.ID, len(it.Seq), want)
		}
	}
	feats := make([][]float64, len(items))
	for i, it := range items {
		f, err := Features(it.Seq.Values(), ix.k)
		if err != nil {
			return err
		}
		feats[i] = f
	}
	ix.queryLn = want
	for i, it := range items {
		ix.ids = append(ix.ids, it.ID)
		ix.raws[it.ID] = it.Seq
		ix.feats[it.ID] = feats[i]
	}
	return nil
}

// Remove drops a sequence from the index, reporting whether it was
// present. Removing the last sequence frees the length constraint, so an
// emptied index accepts sequences of a new length.
func (ix *FIndex) Remove(id string) bool {
	if _, ok := ix.raws[id]; !ok {
		return false
	}
	delete(ix.raws, id)
	delete(ix.feats, id)
	for i, have := range ix.ids {
		if have == id {
			ix.ids = append(ix.ids[:i], ix.ids[i+1:]...)
			break
		}
	}
	if len(ix.ids) == 0 {
		ix.queryLn = 0
	}
	return true
}

// Binary codec. Layout (all integers little-endian):
//
//	magic   "FIX1" (4 bytes)
//	k       u32
//	queryLn u32
//	count   u32
//	per sequence (in sorted id order):
//	  idLen u16, id bytes
//	  queryLn × (t f64, v f64) raw samples
//
// Feature vectors are recomputed on decode: they are pure functions of
// the raw samples and k, so storing them would only create a corruption
// channel the decoder would have to cross-validate anyway.
var fixMagic = [4]byte{'F', 'I', 'X', '1'}

// MarshalBinary encodes the index deterministically (sorted id order).
func (ix *FIndex) MarshalBinary() ([]byte, error) {
	ids := ix.IDs()
	size := 4 + 4 + 4 + 4
	for _, id := range ids {
		size += 2 + len(id) + 16*ix.queryLn
	}
	out := make([]byte, 0, size)
	out = append(out, fixMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.k))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.queryLn))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		if len(id) > math.MaxUint16 {
			return nil, fmt.Errorf("dft: marshal: id too long (%d bytes)", len(id))
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(id)))
		out = append(out, id...)
		for _, p := range ix.raws[id] {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.T))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.V))
		}
	}
	return out, nil
}

// UnmarshalBinary decodes an index encoded by MarshalBinary into ix,
// replacing its contents. Feature vectors are rebuilt from the decoded
// raw samples.
func (ix *FIndex) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("dft: unmarshal: truncated header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != fixMagic {
		return fmt.Errorf("dft: unmarshal: bad magic %q", data[:4])
	}
	k := int(binary.LittleEndian.Uint32(data[4:8]))
	queryLn := int(binary.LittleEndian.Uint32(data[8:12]))
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	if k < 1 {
		return fmt.Errorf("dft: unmarshal: invalid coefficient count %d", k)
	}
	// Sanity bounds: any plausible index fits comfortably (k beyond the
	// sequence length only pads features with zeros), and they keep a
	// hostile header from provoking huge feature allocations.
	const maxCoeffs, maxTotalCoeffs = 1 << 12, 1 << 22
	if k > maxCoeffs {
		return fmt.Errorf("dft: unmarshal: implausible coefficient count %d", k)
	}
	if count > 0 && queryLn < 1 {
		return fmt.Errorf("dft: unmarshal: %d sequences with invalid length %d", count, queryLn)
	}
	if count*k > maxTotalCoeffs {
		return fmt.Errorf("dft: unmarshal: implausible index size (%d sequences × %d coefficients)", count, k)
	}
	// Each sequence needs at least 2 + 16*queryLn bytes: reject counts the
	// payload cannot possibly hold before allocating for them.
	rest := data[16:]
	if queryLn > 0 && count > len(rest)/(2+16*queryLn) {
		return fmt.Errorf("dft: unmarshal: count %d exceeds payload", count)
	}
	dec := &FIndex{
		k:       k,
		queryLn: queryLn,
		raws:    make(map[string]seq.Sequence, count),
		feats:   make(map[string][]float64, count),
	}
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return fmt.Errorf("dft: unmarshal: truncated id length (sequence %d)", i)
		}
		idLen := int(binary.LittleEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < idLen {
			return fmt.Errorf("dft: unmarshal: truncated id (sequence %d)", i)
		}
		id := string(rest[:idLen])
		rest = rest[idLen:]
		if id == "" {
			return fmt.Errorf("dft: unmarshal: empty id (sequence %d)", i)
		}
		if _, dup := dec.raws[id]; dup {
			return fmt.Errorf("dft: unmarshal: duplicate id %q", id)
		}
		if len(rest) < 16*queryLn {
			return fmt.Errorf("dft: unmarshal: truncated samples for %q", id)
		}
		s := make(seq.Sequence, queryLn)
		for j := 0; j < queryLn; j++ {
			s[j].T = math.Float64frombits(binary.LittleEndian.Uint64(rest[16*j:]))
			s[j].V = math.Float64frombits(binary.LittleEndian.Uint64(rest[16*j+8:]))
		}
		rest = rest[16*queryLn:]
		f, err := Features(s.Values(), k)
		if err != nil {
			return fmt.Errorf("dft: unmarshal %q: %w", id, err)
		}
		dec.ids = append(dec.ids, id)
		dec.raws[id] = s
		dec.feats[id] = f
	}
	if len(rest) != 0 {
		return fmt.Errorf("dft: unmarshal: %d trailing bytes", len(rest))
	}
	*ix = *dec
	return nil
}

// Match is one similarity-query result.
type Match struct {
	ID       string
	Distance float64 // true Euclidean distance to the query
}

// Query returns all sequences within Euclidean distance eps of q, sorted by
// distance. Candidates reports how many sequences survived the feature
// filter and needed raw verification (the measure of filter quality).
func (ix *FIndex) Query(q seq.Sequence, eps float64) (matches []Match, candidates int, err error) {
	if len(q) != ix.queryLn {
		return nil, 0, fmt.Errorf("dft: query length %d, index requires %d", len(q), ix.queryLn)
	}
	if eps < 0 {
		return nil, 0, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), ix.k)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ix.ids {
		fd, err := FeatureDistance(qf, ix.feats[id])
		if err != nil {
			return nil, 0, err
		}
		if fd > eps {
			continue // safe: feature distance lower-bounds true distance
		}
		candidates++
		d, err := dist.L2(q, ix.raws[id])
		if err != nil {
			return nil, 0, err
		}
		if d <= eps {
			matches = append(matches, Match{ID: id, Distance: d})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].ID < matches[j].ID
	})
	return matches, candidates, nil
}

// WindowMatch is one subsequence-matching hit: the window of the stored
// sequence starting at Offset matches the query within the tolerance.
type WindowMatch struct {
	ID       string
	Offset   int
	Distance float64
}

// SubsequenceMatch implements the FRM94-style sliding-window search over a
// long stored sequence: every window of len(q) samples is compared to q,
// with the first-k-coefficient feature distance as the no-false-dismissal
// prefilter and true Euclidean distance as the verifier. It returns hits in
// offset order. k is the feature count; eps the Euclidean tolerance.
func SubsequenceMatch(id string, stored, q seq.Sequence, k int, eps float64) ([]WindowMatch, error) {
	w := len(q)
	if w == 0 {
		return nil, fmt.Errorf("dft: empty query")
	}
	if len(stored) < w {
		return nil, nil
	}
	if eps < 0 {
		return nil, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), k)
	if err != nil {
		return nil, err
	}
	var out []WindowMatch
	qv := q.Values()
	buf := make([]float64, w)
	for off := 0; off+w <= len(stored); off++ {
		for i := 0; i < w; i++ {
			buf[i] = stored[off+i].V
		}
		wf, err := Features(buf, k)
		if err != nil {
			return nil, err
		}
		fd, err := FeatureDistance(qf, wf)
		if err != nil {
			return nil, err
		}
		if fd > eps {
			continue
		}
		d, err := dist.L2Values(buf, qv)
		if err != nil {
			return nil, err
		}
		if d <= eps {
			out = append(out, WindowMatch{ID: id, Offset: off, Distance: d})
		}
	}
	return out, nil
}
