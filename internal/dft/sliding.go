package dft

import (
	"fmt"
	"math"
	"math/cmplx"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// WindowMatch is one subsequence-matching hit: the window of the stored
// sequence starting at Offset matches the query within the tolerance.
type WindowMatch struct {
	ID       string
	Offset   int
	Distance float64
}

// slidingDFT maintains the first kEff orthonormal DFT coefficients of a
// length-w window sliding over a value vector, updating in O(kEff) per
// one-sample shift via the classic recurrence
//
//	X_k(o+1) = e^{+2πik/w} · (X_k(o) + (x[o+w] - x[o])/√w)
//
// instead of recomputing an O(w·k) transform per window. Rotation error
// accumulates at a few ulps per shift, so the tracker reseeds itself with
// an exact partial transform every w shifts — amortized O(kEff) per shift
// — keeping the drift orders of magnitude below the filtering slack the
// caller applies.
type slidingDFT struct {
	vals      []float64
	w         int
	kEff      int
	scale     float64      // 1/√w
	rot       []complex128 // rot[k] = e^{+2πik/w}
	c         []complex128 // current window's first kEff coefficients
	off       int          // current window start
	sinceSeed int
}

// newSlidingDFT starts a tracker over vals with window w, maintaining
// kEff coefficients, positioned at offset 0.
func newSlidingDFT(vals []float64, w, kEff int) *slidingDFT {
	s := &slidingDFT{
		vals:  vals,
		w:     w,
		kEff:  kEff,
		scale: 1 / math.Sqrt(float64(w)),
		rot:   make([]complex128, kEff),
		c:     make([]complex128, kEff),
	}
	for k := range s.rot {
		s.rot[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(w)))
	}
	s.seed(0)
	return s
}

// seed recomputes the coefficients of the window at off exactly (a direct
// partial transform of just kEff coefficients), resetting drift.
func (s *slidingDFT) seed(off int) {
	win := s.vals[off : off+s.w]
	for k := 0; k < s.kEff; k++ {
		step := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(s.w)))
		cur := complex(1, 0)
		var sum complex128
		for _, v := range win {
			sum += complex(v, 0) * cur
			cur *= step
		}
		s.c[k] = sum * complex(s.scale, 0)
	}
	s.off, s.sinceSeed = off, 0
}

// shift advances the window by one sample.
func (s *slidingDFT) shift() {
	if s.sinceSeed+1 >= s.w {
		s.seed(s.off + 1)
		return
	}
	diff := complex((s.vals[s.off+s.w]-s.vals[s.off])*s.scale, 0)
	for k, ck := range s.c {
		s.c[k] = (ck + diff) * s.rot[k]
	}
	s.off++
	s.sinceSeed++
}

// featureDistSq returns the squared Euclidean distance between the
// current window's feature vector and qf, a real/imag-interleaved vector
// of (at least) kEff coefficients as produced by Features.
func (s *slidingDFT) featureDistSq(qf []float64) float64 {
	sum := 0.0
	for k, ck := range s.c {
		dr := real(ck) - qf[2*k]
		di := imag(ck) - qf[2*k+1]
		sum += dr*dr + di*di
	}
	return sum
}

// SubsequenceMatch implements the FRM94-style sliding-window search over a
// long stored sequence: every window of len(q) samples is compared to q,
// with the first-k-coefficient feature distance as the no-false-dismissal
// prefilter and true Euclidean distance as the verifier. It returns hits in
// offset order. k is the feature count; eps the Euclidean tolerance.
//
// The window features are maintained incrementally — O(k) per shift via
// slidingDFT rather than a fresh O(w·k) transform per window — and
// surviving windows are verified with the early-abandoning squared-
// distance kernel directly against the stored value vector (no per-window
// copies). The answer is identical to the per-window-recompute baseline:
// the incremental filter is widened by a slack far exceeding its drift,
// and acceptance is decided by the exact verification distance either way.
func SubsequenceMatch(id string, stored, q seq.Sequence, k int, eps float64) ([]WindowMatch, error) {
	w := len(q)
	if w == 0 {
		return nil, fmt.Errorf("dft: empty query")
	}
	if len(stored) < w {
		return nil, nil
	}
	if eps < 0 {
		return nil, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), k)
	if err != nil {
		return nil, err
	}
	kEff := min(k, w)
	sv := stored.AppendValues(make([]float64, 0, len(stored)))
	qv := q.AppendValues(make([]float64, 0, w))

	// The prefilter discards a window only when its (slack-widened)
	// feature distance already exceeds eps — Parseval plus the slack
	// guarantee no true match is dismissed despite incremental drift.
	// Drift between reseeds is bounded by (shifts ≤ w) × a few ulps of
	// the coefficient magnitude, which by Parseval is at most √w·max|x|;
	// the additive term covers that with orders of magnitude to spare
	// (an over-wide slack only admits extra candidates, which exact
	// verification rejects — it can never change the answer).
	maxAbs := 0.0
	for _, v := range sv {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	coeffMag := math.Sqrt(float64(w)) * maxAbs
	slackEps := eps*(1+1e-9) + 1e-12 + 1e-12*float64(w)*(1+coeffMag)
	bailSq := slackEps * slackEps

	sdft := newSlidingDFT(sv, w, kEff)
	var out []WindowMatch
	for off := 0; ; off++ {
		// Inverted comparison: a window is skipped only when its feature
		// distance provably exceeds the slacked bound. A NaN distance
		// (a non-finite sample poisoning the incremental coefficients)
		// compares false here and falls through to exact verification,
		// so poisoned stretches degrade to per-window verification
		// instead of silently dismissing clean windows.
		if !(sdft.featureDistSq(qf) > bailSq) {
			d, within, err := dist.L2ValuesWithin(sv[off:off+w], qv, eps)
			if err != nil {
				return nil, err
			}
			if within {
				out = append(out, WindowMatch{ID: id, Offset: off, Distance: d})
			}
		}
		if off+w >= len(sv) {
			break
		}
		sdft.shift()
	}
	return out, nil
}

// SubsequenceMatchRecompute is the pre-incremental baseline: a fresh
// O(w·k) transform per window. Kept as the oracle the equivalence tests
// compare against and the yardstick the benchmarks measure the
// incremental path's speedup over.
func SubsequenceMatchRecompute(id string, stored, q seq.Sequence, k int, eps float64) ([]WindowMatch, error) {
	w := len(q)
	if w == 0 {
		return nil, fmt.Errorf("dft: empty query")
	}
	if len(stored) < w {
		return nil, nil
	}
	if eps < 0 {
		return nil, fmt.Errorf("dft: negative tolerance %g", eps)
	}
	qf, err := Features(q.Values(), k)
	if err != nil {
		return nil, err
	}
	var out []WindowMatch
	qv := q.Values()
	buf := make([]float64, w)
	for off := 0; off+w <= len(stored); off++ {
		for i := 0; i < w; i++ {
			buf[i] = stored[off+i].V
		}
		wf, err := Features(buf, k)
		if err != nil {
			return nil, err
		}
		fd, err := FeatureDistance(qf, wf)
		if err != nil {
			return nil, err
		}
		if fd > eps {
			continue
		}
		d, err := dist.L2Values(buf, qv)
		if err != nil {
			return nil, err
		}
		if d <= eps {
			out = append(out, WindowMatch{ID: id, Offset: off, Distance: d})
		}
	}
	return out, nil
}
