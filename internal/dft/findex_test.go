package dft

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"seqrep/internal/seq"
)

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 * rng.Float64()
	}
	return seq.New(vals)
}

func TestFIndexAddBatch(t *testing.T) {
	ix, _ := NewFIndex(2)
	rng := rand.New(rand.NewSource(3))
	items := []FItem{
		{ID: "a", Seq: randSeq(rng, 16)},
		{ID: "b", Seq: randSeq(rng, 16)},
		{ID: "c", Seq: randSeq(rng, 16)},
	}
	if err := ix.AddBatch(items); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if got := ix.IDs(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("IDs = %v", got)
	}

	// A bad batch must leave the index untouched.
	bad := []FItem{
		{ID: "d", Seq: randSeq(rng, 16)},
		{ID: "e", Seq: randSeq(rng, 8)}, // wrong length
	}
	if err := ix.AddBatch(bad); err == nil {
		t.Fatal("length-mismatched batch accepted")
	}
	if ix.Len() != 3 {
		t.Errorf("failed batch mutated the index: Len = %d", ix.Len())
	}
	if err := ix.AddBatch([]FItem{{ID: "a", Seq: randSeq(rng, 16)}}); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := ix.AddBatch([]FItem{
		{ID: "x", Seq: randSeq(rng, 16)},
		{ID: "x", Seq: randSeq(rng, 16)},
	}); err == nil {
		t.Error("id repeated within batch accepted")
	}
	if ix.Len() != 3 {
		t.Errorf("failed batches mutated the index: Len = %d", ix.Len())
	}
}

func TestFIndexRemove(t *testing.T) {
	ix, _ := NewFIndex(2)
	rng := rand.New(rand.NewSource(4))
	if err := ix.AddBatch([]FItem{
		{ID: "a", Seq: randSeq(rng, 16)},
		{ID: "b", Seq: randSeq(rng, 16)},
	}); err != nil {
		t.Fatal(err)
	}
	if !ix.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if ix.Remove("a") {
		t.Error("double remove reported true")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := randSeq(rng, 16)
	matches, _, err := ix.Query(q, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "b" {
		t.Errorf("matches = %+v", matches)
	}

	// Emptying the index frees the length constraint.
	if !ix.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if err := ix.Add("new", randSeq(rng, 8)); err != nil {
		t.Errorf("emptied index rejected a new length: %v", err)
	}
}

func TestFIndexCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix, _ := NewFIndex(3)
	if err := ix.AddBatch([]FItem{
		{ID: "ecg-001", Seq: randSeq(rng, 32)},
		{ID: "ecg-002", Seq: randSeq(rng, 32)},
		{ID: "z", Seq: randSeq(rng, 32)},
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec FIndex
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if dec.Len() != ix.Len() || dec.K() != ix.K() {
		t.Fatalf("decoded Len/K = %d/%d, want %d/%d", dec.Len(), dec.K(), ix.Len(), ix.K())
	}
	q := ix.raws["ecg-001"]
	want, wantCand, err := ix.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, gotCand, err := dec.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) || gotCand != wantCand {
		t.Errorf("decoded query = %+v (%d candidates), want %+v (%d)", got, gotCand, want, wantCand)
	}
	blob2, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("codec not deterministic across a round trip")
	}

	// Empty index round-trips too.
	empty, _ := NewFIndex(1)
	eb, err := empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var edec FIndex
	if err := edec.UnmarshalBinary(eb); err != nil {
		t.Fatal(err)
	}
	if edec.Len() != 0 || edec.K() != 1 {
		t.Errorf("empty round trip: Len=%d K=%d", edec.Len(), edec.K())
	}
}

func TestFIndexCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ix, _ := NewFIndex(2)
	if err := ix.Add("a", randSeq(rng, 8)); err != nil {
		t.Fatal(err)
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"truncated":   blob[:len(blob)-3],
		"trailing":    append(append([]byte{}, blob...), 1, 2, 3),
		"zero coeffs": append([]byte("FIX1\x00\x00\x00\x00"), blob[8:]...),
	}
	for name, data := range cases {
		var dec FIndex
		if err := dec.UnmarshalBinary(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
