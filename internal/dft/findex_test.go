package dft

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seqrep/internal/seq"
)

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 * rng.Float64()
	}
	return seq.New(vals)
}

func TestFIndexAddBatch(t *testing.T) {
	ix, _ := NewFIndex(2)
	rng := rand.New(rand.NewSource(3))
	items := []FItem{
		{ID: "a", Seq: randSeq(rng, 16)},
		{ID: "b", Seq: randSeq(rng, 16)},
		{ID: "c", Seq: randSeq(rng, 16)},
	}
	if err := ix.AddBatch(items); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if got := ix.IDs(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("IDs = %v", got)
	}

	// A bad batch must leave the index untouched.
	bad := []FItem{
		{ID: "d", Seq: randSeq(rng, 16)},
		{ID: "e", Seq: randSeq(rng, 8)}, // wrong length
	}
	if err := ix.AddBatch(bad); err == nil {
		t.Fatal("length-mismatched batch accepted")
	}
	if ix.Len() != 3 {
		t.Errorf("failed batch mutated the index: Len = %d", ix.Len())
	}
	if err := ix.AddBatch([]FItem{{ID: "a", Seq: randSeq(rng, 16)}}); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := ix.AddBatch([]FItem{
		{ID: "x", Seq: randSeq(rng, 16)},
		{ID: "x", Seq: randSeq(rng, 16)},
	}); err == nil {
		t.Error("id repeated within batch accepted")
	}
	if ix.Len() != 3 {
		t.Errorf("failed batches mutated the index: Len = %d", ix.Len())
	}
}

func TestFIndexRemove(t *testing.T) {
	ix, _ := NewFIndex(2)
	rng := rand.New(rand.NewSource(4))
	if err := ix.AddBatch([]FItem{
		{ID: "a", Seq: randSeq(rng, 16)},
		{ID: "b", Seq: randSeq(rng, 16)},
	}); err != nil {
		t.Fatal(err)
	}
	if !ix.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if ix.Remove("a") {
		t.Error("double remove reported true")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := randSeq(rng, 16)
	matches, _, err := ix.Query(q, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "b" {
		t.Errorf("matches = %+v", matches)
	}

	// Emptying the index frees the length constraint.
	if !ix.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if err := ix.Add("new", randSeq(rng, 8)); err != nil {
		t.Errorf("emptied index rejected a new length: %v", err)
	}
}

func TestFIndexCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix, _ := NewFIndex(3)
	if err := ix.AddBatch([]FItem{
		{ID: "ecg-001", Seq: randSeq(rng, 32)},
		{ID: "ecg-002", Seq: randSeq(rng, 32)},
		{ID: "z", Seq: randSeq(rng, 32)},
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec FIndex
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if dec.Len() != ix.Len() || dec.K() != ix.K() {
		t.Fatalf("decoded Len/K = %d/%d, want %d/%d", dec.Len(), dec.K(), ix.Len(), ix.K())
	}
	q := ix.raws[ix.byID["ecg-001"]]
	want, wantCand, err := ix.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, gotCand, err := dec.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) || gotCand != wantCand {
		t.Errorf("decoded query = %+v (%d candidates), want %+v (%d)", got, gotCand, want, wantCand)
	}
	blob2, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("codec not deterministic across a round trip")
	}

	// Empty index round-trips too.
	empty, _ := NewFIndex(1)
	eb, err := empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var edec FIndex
	if err := edec.UnmarshalBinary(eb); err != nil {
		t.Fatal(err)
	}
	if edec.Len() != 0 || edec.K() != 1 {
		t.Errorf("empty round trip: Len=%d K=%d", edec.Len(), edec.K())
	}
}

func TestFIndexCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ix, _ := NewFIndex(2)
	if err := ix.Add("a", randSeq(rng, 8)); err != nil {
		t.Fatal(err)
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"truncated":   blob[:len(blob)-3],
		"trailing":    append(append([]byte{}, blob...), 1, 2, 3),
		"zero coeffs": append([]byte("FIX1\x00\x00\x00\x00"), blob[8:]...),
	}
	for name, data := range cases {
		var dec FIndex
		if err := dec.UnmarshalBinary(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestFIndexTreeMatchesLinear: the vantage-point tree path and the linear
// feature-scan path must return identical matches and candidate counts on
// randomized corpora large enough that the tree actually engages.
func TestFIndexTreeMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		tree, _ := NewFIndex(4)
		linear, _ := NewFIndex(4)
		linear.disableTree = true
		n := vpBuildMin * (4 + trial)
		base := randSeq(rng, 64)
		for i := 0; i < n; i++ {
			s := base.Clone()
			for j := range s {
				s[j].V += float64(i%37) * 0.3 * rng.Float64()
			}
			id := fmt.Sprintf("s-%04d", i)
			if err := tree.Add(id, s); err != nil {
				t.Fatal(err)
			}
			if err := linear.Add(id, s); err != nil {
				t.Fatal(err)
			}
		}
		q := base.Clone()
		for _, eps := range []float64{0, 1, 5, 20, 1e6} {
			got, gotCand, err := tree.Query(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if tree.tree == nil {
				t.Fatal("tree path not engaged")
			}
			want, wantCand, err := linear.Query(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if gotCand != wantCand || !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d eps=%g: tree (%d cands) %+v != linear (%d cands) %+v",
					n, eps, gotCand, got, wantCand, want)
			}
		}
		// Adds land in the tree's linearly-scanned tail without dropping
		// it; answers stay equal to the linear scan.
		extra := base.Clone()
		for j := range extra {
			extra[j].V += 0.1
		}
		if err := tree.Add("tail-1", extra); err != nil {
			t.Fatal(err)
		}
		if err := linear.Add("tail-1", extra); err != nil {
			t.Fatal(err)
		}
		if tree.tree == nil || tree.treeN >= tree.Len() {
			t.Fatalf("small add dropped the tree: treeN=%d len=%d", tree.treeN, tree.Len())
		}
		got, _, err := tree.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := linear.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("with tail: tree %+v != linear %+v", got, want)
		}

		// Removals invalidate (swap-delete rewrites covered rows); the
		// next query rebuilds transparently.
		if !tree.Remove("s-0000") || !linear.Remove("s-0000") {
			t.Fatal("remove failed")
		}
		if got, _, err = tree.Query(q, 5); err != nil {
			t.Fatal(err)
		}
		if want, _, err = linear.Query(q, 5); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after remove: tree %+v != linear %+v", got, want)
		}
	}
}

// TestFIndexQueryAllocs guards the query hot loop: candidate generation
// over a built tree must cost a fixed handful of allocations (query
// features + scratch + results), independent of index size.
func TestFIndexQueryAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ix, _ := NewFIndex(4)
	base := randSeq(rng, 128)
	for i := 0; i < 2000; i++ {
		s := base.Clone()
		for j := range s {
			s[j].V += 5 + 10*rng.Float64() + float64(i%13)
		}
		if err := ix.Add(fmt.Sprintf("s-%04d", i), s); err != nil {
			t.Fatal(err)
		}
	}
	q := base.Clone()
	if _, _, err := ix.Query(q, 1); err != nil { // warm: builds the tree
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := ix.Query(q, 1); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 12
	if allocs > budget {
		t.Errorf("FIndex.Query allocates %.0f per op over 2000 sequences, budget %d", allocs, budget)
	}
}
