package dft

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"seqrep/internal/seq"
)

// TestSubsequenceMatchEquivalence is the incremental path's contract:
// across window lengths (power-of-two and not), coefficient counts
// (including k > w), tolerances and plants, SubsequenceMatch returns
// byte-identical hits to the per-window-recompute baseline.
func TestSubsequenceMatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 14; trial++ {
		n := 64 + rng.Intn(500)
		vals := make([]float64, n)
		level := 0.0
		for i := range vals {
			level += rng.NormFloat64()
			vals[i] = level
		}
		stored := seq.New(vals)
		w := 2 + rng.Intn(min(n, 130))
		off := rng.Intn(n - w + 1)
		q := stored.Slice(off, off+w).Clone()
		if trial%3 == 0 { // jitter so near-misses straddle the tolerance
			for i := range q {
				q[i].V += 0.05 * rng.NormFloat64()
			}
		}
		for _, k := range []int{1, 3, 4, w + 5} {
			for _, eps := range []float64{0, 0.3, 2, 25} {
				name := fmt.Sprintf("trial=%d n=%d w=%d k=%d eps=%g", trial, n, w, k, eps)
				got, err := SubsequenceMatch("s", stored, q, k, eps)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := SubsequenceMatchRecompute("s", stored, q, k, eps)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: incremental %+v != recompute %+v", name, got, want)
				}
			}
		}
	}
}

// TestSubsequenceMatchValidation pins the error/edge behaviour shared by
// both implementations.
func TestSubsequenceMatchValidation(t *testing.T) {
	s := seq.New([]float64{1, 2, 3, 4})
	if _, err := SubsequenceMatch("s", s, nil, 2, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := SubsequenceMatch("s", s, s, 2, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := SubsequenceMatch("s", s, s, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if hits, err := SubsequenceMatch("s", s.Slice(0, 2), s, 2, 1); err != nil || hits != nil {
		t.Errorf("query longer than stored: hits=%v err=%v", hits, err)
	}
	// Exact self-match at every eps, including 0.
	hits, err := SubsequenceMatch("s", s, s.Slice(1, 3).Clone(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Offset == 1 && h.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted window not found at eps=0: %+v", hits)
	}
}

// TestSlidingDFTDrift: after thousands of shifts the maintained
// coefficients must stay within the filter slack of an exact transform.
func TestSlidingDFTDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = 100 * rng.NormFloat64()
	}
	const w, k = 100, 6
	sdft := newSlidingDFT(vals, w, k)
	worst := 0.0
	for off := 0; off+w < len(vals); off++ {
		sdft.shift()
		exact := newSlidingDFT(vals[off+1:], w, k) // seeds exactly at its offset 0
		for ki := 0; ki < k; ki++ {
			if d := cmplxAbs(sdft.c[ki] - exact.c[ki]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		t.Errorf("coefficient drift %g exceeds the filter slack", worst)
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestSubsequenceMatchAllocs guards the incremental hot loop: total
// allocations for a long search must stay at a small fixed setup cost
// (buffers + tracker) plus the hits themselves — nothing per window.
func TestSubsequenceMatchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	stored := seq.New(vals)
	q := stored.Slice(1000, 1128).Clone()
	allocs := testing.AllocsPerRun(10, func() {
		hits, err := SubsequenceMatch("s", stored, q, 4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 {
			t.Fatal("planted window not found")
		}
	})
	// Setup: qf features, two value buffers, the tracker's three slices,
	// the hit slice. ~4000 windows must add nothing.
	const budget = 24
	if allocs > budget {
		t.Errorf("SubsequenceMatch allocates %.0f per op, budget %d", allocs, budget)
	}
}

// TestSubsequenceMatchNaNSamples: a non-finite sample must not poison the
// incremental coefficients into dismissing clean windows — the answer
// stays identical to the per-window-recompute baseline.
func TestSubsequenceMatchNaNSamples(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 5)
	}
	vals[10] = math.NaN()
	stored := seq.New(vals)
	q := stored.Slice(20, 52).Clone() // NaN-free window
	for _, k := range []int{1, 4} {
		got, err := SubsequenceMatch("s", stored, q, k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SubsequenceMatchRecompute("s", stored, q, k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: incremental %+v != recompute %+v", k, got, want)
		}
		found := false
		for _, h := range got {
			if h.Offset == 20 && h.Distance == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("k=%d: clean planted window dismissed: %+v", k, got)
		}
	}
}
