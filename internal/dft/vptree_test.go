package dft

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// linearRange is the brute-force oracle: every ordinal within eps.
func linearRange(pts []float64, dim int, q []float64, eps float64) []int32 {
	var out []int32
	for o := 0; o*dim < len(pts); o++ {
		if pointDist(q, pts[o*dim:(o+1)*dim]) <= eps {
			out = append(out, int32(o))
		}
	}
	return out
}

// TestVPTreeMatchesLinearScan is the tree's core contract: for random
// point sets (including heavy duplicates) and radii from empty to
// all-inclusive, Search returns exactly the linear scan's result set with
// identical distances, while examining at most every point once.
func TestVPTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		dim := 1 + rng.Intn(6)
		n := rng.Intn(300)
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = math.Round(4 * rng.NormFloat64()) // coarse grid → many ties/duplicates
		}
		leaf := 1 + rng.Intn(8)
		tree, err := NewVPTree(pts, dim, leaf)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, dim)
		for i := range q {
			q[i] = 4 * rng.NormFloat64()
		}
		for _, eps := range []float64{0, 0.5, 2, 8, 1e9} {
			var got []int32
			examined := tree.Search(q, eps, func(ord int32, d float64) {
				if want := pointDist(q, pts[int(ord)*dim:(int(ord)+1)*dim]); d != want {
					t.Fatalf("ord %d: reported d=%v, want %v", ord, d, want)
				}
				got = append(got, ord)
			})
			if examined > n {
				t.Fatalf("examined %d of %d points", examined, n)
			}
			if examined < len(got) {
				t.Fatalf("examined %d < %d found", examined, len(got))
			}
			slices.Sort(got)
			want := linearRange(pts, dim, q, eps)
			if !slices.Equal(got, want) {
				t.Fatalf("dim=%d n=%d leaf=%d eps=%g: tree %v != scan %v", dim, n, leaf, eps, got, want)
			}
		}
	}
}

// TestVPTreeSubLinear checks the point of the structure: on a clustered
// workload with a selective radius, the tree examines far fewer vectors
// than the population.
func TestVPTreeSubLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, dim = 4096, 8
	pts := make([]float64, n*dim)
	for o := 0; o < n; o++ {
		center := float64(o%64) * 100 // 64 well-separated clusters
		for j := 0; j < dim; j++ {
			pts[o*dim+j] = center + rng.NormFloat64()
		}
	}
	tree, err := NewVPTree(pts, dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for j := range q {
		q[j] = 300 + rng.NormFloat64() // at cluster 3
	}
	var found int
	examined := tree.Search(q, 10, func(int32, float64) { found++ })
	if found == 0 {
		t.Fatal("query found nothing in its own cluster")
	}
	if examined > n/4 {
		t.Errorf("examined %d of %d vectors (found %d): pruning is not sub-linear", examined, n, found)
	}
}

// TestVPTreeValidation covers constructor errors and degenerate inputs.
func TestVPTreeValidation(t *testing.T) {
	if _, err := NewVPTree(nil, 0, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewVPTree(make([]float64, 5), 2, 0); err == nil {
		t.Error("non-tiling length accepted")
	}
	if _, err := NewVPTree(make([]float64, 4), 2, -1); err == nil {
		t.Error("negative leaf accepted")
	}
	empty, err := NewVPTree(nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Search([]float64{0, 0, 0}, 1, func(int32, float64) { t.Error("found in empty tree") }); got != 0 {
		t.Errorf("empty tree examined %d", got)
	}
	one, err := NewVPTree([]float64{1, 2}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	one.Search([]float64{1, 2}, 0, func(ord int32, d float64) { hits++ })
	if hits != 1 || one.Len() != 1 {
		t.Errorf("singleton tree: hits=%d len=%d", hits, one.Len())
	}
	// Mismatched query width finds nothing rather than panicking.
	if got := one.Search([]float64{1}, 10, func(int32, float64) {}); got != 0 {
		t.Errorf("mismatched query examined %d", got)
	}
}

// TestVPTreeAllDuplicates: identical points must neither loop forever at
// build time nor be lost at query time.
func TestVPTreeAllDuplicates(t *testing.T) {
	const n, dim = 100, 4
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = 7
	}
	tree, err := NewVPTree(pts, dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	tree.Search([]float64{7, 7, 7, 7}, 0, func(int32, float64) { found++ })
	if found != n {
		t.Errorf("found %d of %d duplicate points", found, n)
	}
}

// TestVPTreeNaNPoints: a non-finite point must not prune clean subtrees —
// the tree's result over the remaining points matches the linear scan,
// exactly like the columnar feature scan it replaces.
func TestVPTreeNaNPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, dim = 400, 4
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	pts[0] = math.NaN() // poison ordinal 0 — a likely early vantage point
	pts[57*dim+2] = math.NaN()
	tree, err := NewVPTree(pts, dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for _, eps := range []float64{0.5, 2, 1e9} {
		var got []int32
		tree.Search(q, eps, func(ord int32, d float64) {
			if !math.IsNaN(d) {
				got = append(got, ord)
			}
		})
		slices.Sort(got)
		want := linearRange(pts, dim, q, eps)
		if !slices.Equal(got, want) {
			t.Fatalf("eps=%g: tree %v != scan %v", eps, got, want)
		}
	}
}
