package dft

import (
	"math/rand"
	"testing"

	"seqrep/internal/seq"
)

func randVals(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	return vals
}

func BenchmarkDFT512(b *testing.B) {
	vals := randVals(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(vals)
	}
}

func BenchmarkFFT512(b *testing.B) {
	vals := randVals(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIndexQuery(b *testing.B) {
	ix, err := NewFIndex(4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := ix.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), seq.New(randVals(128, int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	q := seq.New(randVals(128, 999))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Query(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIndexTreeVsLinear compares Query's vantage-point-tree
// candidate generation against the linear columnar feature scan on a
// clustered 20k-sequence corpus with a selective radius — the index-level
// view of the hot-path speedup the core planner inherits.
func BenchmarkFIndexTreeVsLinear(b *testing.B) {
	const n = 20000
	build := func(linear bool) (*FIndex, seq.Sequence) {
		rng := rand.New(rand.NewSource(77))
		ix, err := NewFIndex(4)
		if err != nil {
			b.Fatal(err)
		}
		items := make([]FItem, 0, n)
		var query seq.Sequence
		for i := 0; i < n; i++ {
			base := make([]float64, 64)
			level := float64(i%200) * 10 // 200 well-separated families
			for j := range base {
				base[j] = level + rng.NormFloat64()
			}
			s := seq.New(base)
			if i == 0 {
				query = s.Clone()
			}
			items = append(items, FItem{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Seq: s})
		}
		ix.disableTree = linear
		if err := ix.AddBatch(items); err != nil {
			b.Fatal(err)
		}
		return ix, query
	}
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"vptree", false}, {"linear", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ix, q := build(mode.linear)
			if _, _, err := ix.Query(q, 3); err != nil { // warm: builds the tree
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matches, _, err := ix.Query(q, 3)
				if err != nil {
					b.Fatal(err)
				}
				if len(matches) == 0 {
					b.Fatal("query family not found")
				}
			}
		})
	}
}

func BenchmarkSubsequenceMatch(b *testing.B) {
	stored := seq.New(randVals(2048, 5))
	q := stored.Slice(700, 828).Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := SubsequenceMatch("s", stored, q, 4, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 {
			b.Fatal("planted window not found")
		}
	}
}

// BenchmarkSubsequenceIncrementalVsRecompute measures the O(k)-per-shift
// sliding-window DFT against the per-window-recompute baseline it
// replaced (both return identical hits; see sliding_test.go).
func BenchmarkSubsequenceIncrementalVsRecompute(b *testing.B) {
	stored := seq.New(randVals(8192, 5))
	q := stored.Slice(3000, 3128).Clone()
	run := func(b *testing.B, match func(string, seq.Sequence, seq.Sequence, int, float64) ([]WindowMatch, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits, err := match("s", stored, q, 4, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) == 0 {
				b.Fatal("planted window not found")
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, SubsequenceMatch) })
	b.Run("recompute", func(b *testing.B) { run(b, SubsequenceMatchRecompute) })
}
