package dft

import (
	"math/rand"
	"testing"

	"seqrep/internal/seq"
)

func randVals(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	return vals
}

func BenchmarkDFT512(b *testing.B) {
	vals := randVals(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(vals)
	}
}

func BenchmarkFFT512(b *testing.B) {
	vals := randVals(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIndexQuery(b *testing.B) {
	ix, err := NewFIndex(4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := ix.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), seq.New(randVals(128, int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	q := seq.New(randVals(128, 999))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Query(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsequenceMatch(b *testing.B) {
	stored := seq.New(randVals(2048, 5))
	q := stored.Slice(700, 828).Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := SubsequenceMatch("s", stored, q, 4, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 {
			b.Fatal("planted window not found")
		}
	}
}
