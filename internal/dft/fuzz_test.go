package dft

import (
	"bytes"
	"testing"

	"seqrep/internal/seq"
)

// codecSeed marshals a small index for the fuzz corpus.
func codecSeed(tb testing.TB, k int, seqs map[string][]float64) []byte {
	tb.Helper()
	ix, err := NewFIndex(k)
	if err != nil {
		tb.Fatal(err)
	}
	for id, vals := range seqs {
		if err := ix.Add(id, seq.New(vals)); err != nil {
			tb.Fatal(err)
		}
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// FuzzFIndexCodec feeds arbitrary bytes to the FIndex decoder.
// Invariants: UnmarshalBinary never panics; any blob it accepts
// re-encodes to a byte-identical blob after a second decode (the codec is
// deterministic and lossless); and the decoded index still answers
// queries.
func FuzzFIndexCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FIX1garbage"))
	f.Add(codecSeed(f, 2, map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {4, 3, 2, 1},
	}))
	f.Add(codecSeed(f, 3, map[string][]float64{
		"ecg-001": {0, 1, 0, -1, 0, 1, 0, -1},
	}))
	f.Add(codecSeed(f, 1, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound per-exec DFT work (decode is O(queryLn²) per sequence)
		}
		var ix FIndex
		if err := ix.UnmarshalBinary(data); err != nil {
			return
		}
		blob, err := ix.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded index does not re-encode: %v", err)
		}
		var ix2 FIndex
		if err := ix2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		blob2, err := ix2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("codec not deterministic: %d vs %d bytes", len(blob), len(blob2))
		}
		if ix.Len() > 0 {
			q := ix.raws[0]
			if _, _, err := ix.Query(q, 1); err != nil {
				t.Fatalf("decoded index cannot answer a query: %v", err)
			}
		}
	})
}
