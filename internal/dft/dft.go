// Package dft implements the DFT-feature similarity search of the prior
// art the paper compares against (Agrawal, Faloutsos & Swami 1993 "F-index";
// Faloutsos, Ranganathan & Manolopoulos 1994 subsequence matching). It is
// the baseline for the experiments showing that proximity in the frequency
// domain cannot detect similarity under dilation or contraction (§3), which
// is what motivates the paper's feature-based representation.
//
// The transform is orthonormal (1/√n scaling), so by Parseval's theorem the
// Euclidean distance between two sequences equals the Euclidean distance
// between their full DFTs, and distance over the first k coefficients lower
// bounds it — guaranteeing no false dismissals when filtering by features.
package dft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DFT returns the orthonormal discrete Fourier transform of vals,
// X[k] = (1/√n) Σ_j x[j]·e^(-2πi·jk/n), computed directly in O(n²).
// Kept as the reference implementation; FFT is the fast path.
func DFT(vals []float64) []complex128 {
	n := len(vals)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	scale := 1 / math.Sqrt(float64(n))
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += complex(vals[j], 0) * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum * complex(scale, 0)
	}
	return out
}

// FFT returns the orthonormal DFT of vals via the radix-2 Cooley–Tukey
// algorithm. len(vals) must be a power of two.
func FFT(vals []float64) ([]complex128, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("dft: empty input")
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("dft: FFT length %d is not a power of two", n)
	}
	buf := make([]complex128, n)
	for i, v := range vals {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	scale := complex(1/math.Sqrt(float64(n)), 0)
	for i := range buf {
		buf[i] *= scale
	}
	return buf, nil
}

// InverseFFT inverts an orthonormal transform produced by FFT.
func InverseFFT(coeffs []complex128) ([]float64, error) {
	n := len(coeffs)
	if n == 0 {
		return nil, fmt.Errorf("dft: empty input")
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("dft: inverse FFT length %d is not a power of two", n)
	}
	buf := make([]complex128, n)
	copy(buf, coeffs)
	fftInPlace(buf, true)
	scale := 1 / math.Sqrt(float64(n))
	out := make([]float64, n)
	for i := range buf {
		out[i] = real(buf[i]) * scale
	}
	return out, nil
}

// fftInPlace is an iterative radix-2 FFT (bit-reversal permutation then
// butterfly passes). inverse selects the conjugate transform.
func fftInPlace(buf []complex128, inverse bool) {
	n := len(buf)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if !inverse {
			angle = -angle
		}
		wl := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for i := 0; i < half; i++ {
				a := buf[start+i]
				b := buf[start+i+half] * w
				buf[start+i] = a + b
				buf[start+i+half] = a - b
				w *= wl
			}
		}
	}
}

// Transform computes the orthonormal DFT choosing FFT when the length is a
// power of two and the direct transform otherwise.
func Transform(vals []float64) []complex128 {
	if n := len(vals); n > 0 && n&(n-1) == 0 {
		out, err := FFT(vals)
		if err == nil {
			return out
		}
	}
	return DFT(vals)
}

// Features returns the 2k-dimensional feature vector of the first k DFT
// coefficients (real and imaginary parts interleaved), the mapping the
// F-index uses. Sequences shorter than required pad conceptually with the
// available coefficients; k must be >= 1.
func Features(vals []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("dft: feature count %d must be >= 1", k)
	}
	coeffs := Transform(vals)
	out := make([]float64, 0, 2*k)
	for i := 0; i < k; i++ {
		var c complex128
		if i < len(coeffs) {
			c = coeffs[i]
		}
		out = append(out, real(c), imag(c))
	}
	return out, nil
}

// FeatureDistance returns the Euclidean distance between two feature
// vectors. By Parseval this lower-bounds the true Euclidean distance
// between the underlying sequences (no false dismissals).
func FeatureDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dft: feature vectors differ in length: %d vs %d", len(a), len(b))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// FeatureDist returns the Euclidean distance between two feature vectors
// of pre-validated equal width — the hot-loop form of FeatureDistance for
// columnar stores whose row stride is fixed by construction, so the
// per-comparison length check is hoisted out of the scan entirely. It
// shares FeatureDistance's accumulation order exactly (pruning decisions
// agree bit-for-bit).
func FeatureDist(a, b []float64) float64 { return pointDist(a, b) }

// MainFrequency returns the dominant non-DC frequency bin of vals and its
// magnitude. The paper's §3 argument: under dilation (frequency reduction)
// or contraction the dominant frequency moves, so frequency-domain
// comparison misses sequences that are feature-identical. Only bins up to
// n/2 (the Nyquist limit) are considered.
func MainFrequency(vals []float64) (bin int, magnitude float64) {
	coeffs := Transform(vals)
	n := len(coeffs)
	for k := 1; k <= n/2; k++ {
		if m := cmplx.Abs(coeffs[k]); m > magnitude {
			bin, magnitude = k, m
		}
	}
	return bin, magnitude
}
