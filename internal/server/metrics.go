package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// metricsRegistry accumulates per-endpoint request counters and latency
// sums, rendered in Prometheus text exposition format by /metrics.
// Endpoints are labeled by their route pattern (e.g. "POST /v1/query"),
// never by raw paths, so cardinality stays bounded.
type metricsRegistry struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	codes   map[int]int64 // responses by status code
	seconds float64       // total handling latency
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{endpoints: make(map[string]*endpointMetrics)}
}

// observe records one handled request.
func (m *metricsRegistry) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.endpoints[endpoint]
	if !ok {
		ep = &endpointMetrics{codes: make(map[int]int64)}
		m.endpoints[endpoint] = ep
	}
	ep.codes[code]++
	ep.seconds += d.Seconds()
}

// render writes the Prometheus text format, deterministically ordered.
func (m *metricsRegistry) render(w *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP seqserved_requests_total Handled requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE seqserved_requests_total counter\n")
	for _, name := range names {
		ep := m.endpoints[name]
		codes := make([]int, 0, len(ep.codes))
		for code := range ep.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "seqserved_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, ep.codes[code])
		}
	}

	fmt.Fprintf(w, "# HELP seqserved_request_seconds_sum Total request handling latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE seqserved_request_seconds_sum counter\n")
	for _, name := range names {
		ep := m.endpoints[name]
		var count int64
		for _, n := range ep.codes {
			count += n
		}
		fmt.Fprintf(w, "seqserved_request_seconds_sum{endpoint=%q} %g\n", name, ep.seconds)
		fmt.Fprintf(w, "seqserved_request_seconds_count{endpoint=%q} %d\n", name, count)
	}
}

// statusRecorder captures the status code a handler writes, for the
// metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so streaming handlers
// (/v1/query/stream) can push NDJSON frames through the middleware.
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}
