package server

// Fault injection on the snapshot path: /v1/snapshot/save runs against a
// writer that dies mid-stream (store.FailAfterWriter, the write-side
// sibling of CountingArchive) while ingest traffic is in flight. The save
// must fail loudly (500) — and nothing else: the server keeps serving,
// the previous snapshot file is byte-identical, no temp litter remains,
// and the old snapshot still loads.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"seqrep"
	"seqrep/internal/store"
)

func TestSnapshotFaultInjectionUnderLoad(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := seqrep.Config{}
	var failing atomic.Bool
	snap := &FileSnapshotter{
		Path:   filepath.Join(dir, "db.bin"),
		Config: cfg,
		WrapWriter: func(w io.Writer) io.Writer {
			if failing.Load() {
				return store.NewFailAfterWriter(w, 64)
			}
			return w
		},
	}
	db, err := seqrep.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Config{DB: db, Snapshotter: snap})

	for i := 0; i < 4; i++ {
		if _, err := c.Ingest(ctx, feverItem(t, fmt.Sprintf("keep-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}

	// Ingest load runs while the failing save is attempted.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("load-%d", i)
			if _, err := c.Ingest(ctx, feverItem(t, id, i)); err != nil {
				t.Errorf("background ingest: %v", err)
				return
			}
			if _, err := c.Remove(ctx, id); err != nil {
				t.Errorf("background remove: %v", err)
				return
			}
		}
	}()

	failing.Store(true)
	_, saveErr := c.SaveSnapshot(ctx)
	failing.Store(false)
	close(stop)
	wg.Wait()

	if saveErr == nil {
		t.Fatal("save over a dying writer reported success")
	}
	if ae := apiErr(t, saveErr); ae.StatusCode != 500 || !strings.Contains(ae.Message, "injected") {
		t.Fatalf("failing save = %v, want a 500 carrying the injected error", saveErr)
	}

	// The server is still healthy and serving.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sequences != 4 {
		t.Fatalf("health after failed save = %+v", h)
	}
	if _, err := c.Query(ctx, `MATCH PEAKS 2`); err != nil {
		t.Fatalf("query after failed save: %v", err)
	}

	// The previous snapshot is byte-identical and free of temp litter.
	after, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(goodBytes) {
		t.Fatal("failed save corrupted the previous snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("snapshot dir litter after failed save: %v", names)
	}
	// ... and it still loads the pre-failure state.
	restored, err := snap.Load()
	if err != nil {
		t.Fatalf("old snapshot no longer loads: %v", err)
	}
	if restored.Len() != 4 {
		t.Fatalf("old snapshot restores %d sequences, want 4", restored.Len())
	}

	// With the fault gone, saving works again.
	if _, err := c.SaveSnapshot(ctx); err != nil {
		t.Fatalf("save after clearing the fault: %v", err)
	}
}

// TestStorageFaultAnswers500 pins the server-fault classification: a
// stored record whose raw samples have vanished from the archive (here:
// a snapshot load rolling the DB — but not the archive — back past a
// Remove, the documented SERVER.md caveat) turns queries that must read
// them into 500s, not 4xx, while the server itself stays healthy.
func TestStorageFaultAnswers500(t *testing.T) {
	ctx := context.Background()
	cfg := seqrep.Config{Archive: seqrep.NewMemArchive()}
	snap := &FileSnapshotter{Path: filepath.Join(t.TempDir(), "db.bin"), Config: cfg}
	db, err := seqrep.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Config{DB: db, Snapshotter: snap})

	for _, id := range []string{"keep", "victim"} {
		if _, err := c.Ingest(ctx, feverItem(t, id, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Remove(ctx, "victim"); err != nil { // deletes its raws too
		t.Fatal(err)
	}
	if _, err := c.LoadSnapshot(ctx); err != nil { // restores the record, not the raws
		t.Fatal(err)
	}

	_, err = c.Query(ctx, `MATCH VALUE LIKE keep EPS 1000`)
	if ae := apiErr(t, err); ae.StatusCode != 500 || !strings.Contains(ae.Message, "storage fault") {
		t.Fatalf("query over a raw-less record = %v, want a 500 storage fault", err)
	}
	// The fault is per-query, not per-server.
	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health after storage fault = %+v, %v", h, err)
	}
	// Re-ingesting the id heals it, after removing the stale record. The
	// remove unlinks the record but errors on the already-gone raws — the
	// record must be gone regardless.
	if _, err := c.Remove(ctx, "victim"); err == nil {
		t.Fatal("removing a raw-less record hid the archive inconsistency")
	}
	if _, err := c.Record(ctx, "victim"); !apiErr(t, err).IsNotFound() {
		t.Fatal("failed archive delete left the record linked")
	}
	if _, err := c.Ingest(ctx, feverItem(t, "victim", 0)); err != nil {
		t.Fatalf("re-ingest after heal: %v", err)
	}
	if _, err := c.Query(ctx, `MATCH VALUE LIKE keep EPS 1000`); err != nil {
		t.Fatalf("query after re-ingest: %v", err)
	}
}

// errorsIsSanity pins that the injected error is what SaveFile surfaced
// (not some secondary failure), via the exported sentinel.
func TestFailAfterWriterSentinelThroughSaveFile(t *testing.T) {
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("x", s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.bin")
	err = seqrep.SaveFile(db, path, func(w io.Writer) io.Writer { return store.NewFailAfterWriter(w, 8) })
	if !errors.Is(err, store.ErrInjectedWrite) {
		t.Fatalf("SaveFile error = %v, want ErrInjectedWrite", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("failed first save left a file at the destination")
	}
}
