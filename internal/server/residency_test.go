package server

// Residency at the serving layer: a durable server started with a
// memory budget must surface the paging subsystem in /healthz (budget,
// resident count/bytes, pins, eviction and cold-hit totals) and as
// seqserved_resident_* Prometheus series in /metrics; a server without
// a budget must not report any of it; and a disk fault on the cold-read
// path must stay query-scoped — a 500 for that query, never a degraded
// database.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"seqrep"
	"seqrep/internal/chaos"
)

func TestResidencyHealthAndMetrics(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// A 1-byte budget: every clean payload is evictable immediately, so
	// the lifecycle (pinned while dirty → evicted after checkpoint →
	// paged back on read) is fully observable.
	snap := &DirSnapshotter{Dir: dir, Config: seqrep.Config{MemoryBudget: 1}}
	db, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, cl := testServer(t, Config{DB: db, Snapshotter: snap})

	ids := make([]string, 6)
	for i := range ids {
		ids[i] = fmt.Sprintf("rec-%d", i)
		if _, err := cl.Ingest(ctx, feverItem(t, ids[i], i)); err != nil {
			t.Fatalf("ingest %s: %v", ids[i], err)
		}
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.MemoryBudget != 1 {
		t.Fatalf("health memory_budget = %d, want 1", h.MemoryBudget)
	}
	// Every record is dirty (no checkpoint yet): pinned resident, exempt
	// from eviction even over budget — the only copy is RAM + WAL.
	if h.ResidentRecords != len(ids) || h.ResidentPinned != len(ids) {
		t.Fatalf("pre-checkpoint residency = %d records / %d pinned, want %d / %d",
			h.ResidentRecords, h.ResidentPinned, len(ids), len(ids))
	}
	if h.ResidentBytes == 0 {
		t.Fatal("pre-checkpoint resident_bytes = 0, want > 0")
	}

	// The checkpoint makes the payloads durable in the segment tier and
	// unpins them; with a 1-byte budget all of them evict.
	if _, err := cl.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ResidentPinned != 0 || h.ResidentRecords != 0 || h.ResidentBytes != 0 {
		t.Fatalf("post-checkpoint residency = %+v, want everything evicted", h)
	}
	if h.Evictions < uint64(len(ids)) {
		t.Fatalf("evictions = %d, want >= %d", h.Evictions, len(ids))
	}

	// A read of an evicted record pages it back in from the tier.
	if _, err := srv.DB().Representation(ids[0]); err != nil {
		t.Fatalf("Representation(%s): %v", ids[0], err)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ColdHits == 0 {
		t.Fatal("cold_hits = 0 after paging an evicted record")
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"seqserved_resident_records",
		"seqserved_resident_bytes",
		"seqserved_memory_budget_bytes 1",
		"seqserved_resident_pinned",
		"seqserved_evictions_total",
		"seqserved_cold_hits_total",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %s:\n%s", want, m)
		}
	}
}

// TestResidencyColdReadFaultAnswers500: a disk fault on the paging path
// is query-scoped at the HTTP layer too — the failing query answers 500
// (storage fault), /healthz stays ok (not degraded: the WAL is fine,
// only a read failed), and once the fault heals the same query serves
// the full answer.
func TestResidencyColdReadFaultAnswers500(t *testing.T) {
	ctx := context.Background()
	snap := &DirSnapshotter{Dir: t.TempDir(), Config: seqrep.Config{MemoryBudget: 1}}
	db, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	_, cl := testServer(t, Config{DB: db, Snapshotter: snap})

	for i := 0; i < 3; i++ {
		if _, err := cl.Ingest(ctx, feverItem(t, fmt.Sprintf("rec-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint evicts every payload; each exact verification below
	// must page in from the (faulted) segment tier.
	if _, err := cl.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}

	f := &chaos.Fault{Kind: chaos.DiskError, Count: -1}
	db.SetSegmentReadFault(f.Hook())
	_, err = cl.Query(ctx, `MATCH VALUE LIKE rec-0 EPS 1000`)
	if ae := apiErr(t, err); ae.StatusCode != 500 || !strings.Contains(ae.Message, "storage fault") {
		t.Fatalf("query over a faulted cold read = %v, want a 500 storage fault", err)
	}
	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" || h.Degraded {
		t.Fatalf("health during a cold-read fault = %+v, %v; want ok and not degraded", h, err)
	}

	f.Clear()
	resp, err := cl.Query(ctx, `MATCH VALUE LIKE rec-0 EPS 1000`)
	if err != nil {
		t.Fatalf("query after the fault healed: %v", err)
	}
	if len(resp.Matches) != 3 {
		t.Fatalf("healed query returned %d matches, want 3", len(resp.Matches))
	}
}

func TestResidencyAbsentWithoutBudget(t *testing.T) {
	ctx := context.Background()
	snap := &DirSnapshotter{Dir: t.TempDir(), Config: seqrep.Config{}}
	db, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	_, cl := testServer(t, Config{DB: db, Snapshotter: snap})

	if _, err := cl.Ingest(ctx, feverItem(t, "only", 1)); err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.MemoryBudget != 0 || h.ResidentRecords != 0 || h.Evictions != 0 {
		t.Fatalf("fully-resident server reports residency fields: %+v", h)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(m, "seqserved_resident_records") {
		t.Fatal("fully-resident server emits seqserved_resident_* series")
	}
}
