package server

import (
	"container/list"
	"sync"

	"seqrep"
	"seqrep/api"
)

// resultCache is an LRU cache of query answers keyed by the statement's
// canonical form, invalidated by the database's mutation generation: an
// entry is served only while the generation it was computed at is still
// current. Mutations bump the generation, so a lookup after any committed
// Ingest/Remove/Load misses (and drops the stale entry) without the cache
// ever tracking which entries a write affected. Entries also remember
// which database instance they were computed on: a snapshot load swaps
// the instance and starts a fresh generation sequence, and the identity
// check keeps an in-flight query on the old instance from seeding the
// cache across the swap.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, invalidations int64
}

type cacheEntry struct {
	key  string
	db   *seqrep.DB // instance the answer was computed on
	gen  uint64
	resp *api.QueryResponse // immutable once stored
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element, max),
	}
}

// get returns the cached answer for key computed on db at generation
// gen, or nil. A hit refreshes recency; an entry that is stale from the
// caller's viewpoint (older generation, or another instance) is evicted
// and counted as an invalidation plus a miss. An entry *newer* than the
// caller's generation is left alone — the caller read its generation
// before a write committed and merely lost that race; destroying the
// fresher answer would waste the faster request's work.
func (c *resultCache) get(key string, db *seqrep.DB, gen uint64) *api.QueryResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	ent := el.Value.(*cacheEntry)
	if ent.db == db && ent.gen == gen {
		c.order.MoveToFront(el)
		c.hits++
		return ent.resp
	}
	if ent.db != db || ent.gen < gen {
		c.order.Remove(el)
		delete(c.entries, key)
		c.invalidations++
	}
	c.misses++
	return nil
}

// put stores resp under key at generation gen, evicting the least
// recently used entry when full. A same-instance entry computed at a
// newer generation is kept: a slow request that read an old generation
// before stalling must not clobber the fresher answer a faster request
// cached meanwhile.
func (c *resultCache) put(key string, db *seqrep.DB, gen uint64, resp *api.QueryResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		if ent := el.Value.(*cacheEntry); ent.db == db && ent.gen > gen {
			return
		}
		el.Value = &cacheEntry{key: key, db: db, gen: gen, resp: resp}
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, db: db, gen: gen, resp: resp})
}

// clear drops every entry (snapshot load swaps the database out from
// under the generation sequence, so nothing cached remains comparable).
func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

// cacheStats is a snapshot of the counters for /metrics.
type cacheStats struct {
	entries, hits, misses, invalidations int64
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		entries:       int64(c.order.Len()),
		hits:          c.hits,
		misses:        c.misses,
		invalidations: c.invalidations,
	}
}
