package server

// Admission-control tests: the weighted limiter's unit behavior (FIFO
// grants, bounded queue, cancellation while queued) driven by grabbing
// slots directly for determinism, plus the HTTP contract — 429 with
// Retry-After at saturation, health/metrics bypassing admission, and
// /healthz flipping to 503 on degraded mode and checkpoint-failure
// streaks.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seqrep"
	"seqrep/api"
)

func TestAdmissionGrantAndRelease(t *testing.T) {
	a := newAdmission(4, 8)
	rel1, _, err := a.acquire(context.Background(), "r1", 3)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if st := a.stats(); st.Inflight != 3 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Weight 2 does not fit (3+2 > 4): it must queue, then admit when
	// the first releases.
	granted := make(chan func(), 1)
	go func() {
		rel, _, err := a.acquire(context.Background(), "r2", 2)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		granted <- rel
	}()
	waitFor(t, func() bool { return a.stats().Queued == 2 })
	rel1()
	var rel2 func()
	select {
	case rel2 = <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never granted after release")
	}
	if st := a.stats(); st.Inflight != 2 || st.Queued != 0 {
		t.Fatalf("stats after grant = %+v", st)
	}
	rel2()
	if st := a.stats(); st.Inflight != 0 {
		t.Fatalf("stats after all released = %+v", st)
	}
}

func TestAdmissionQueueOverflow(t *testing.T) {
	a := newAdmission(2, 1)
	rel, _, err := a.acquire(context.Background(), "r", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Queue capacity 1: a weight-1 waiter fits, a second overflows.
	go a.acquire(context.Background(), "r", 1)
	waitFor(t, func() bool { return a.stats().Queued == 1 })
	_, after, err := a.acquire(context.Background(), "r", 1)
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("overflow acquire = %v, want errOverloaded", err)
	}
	if after < 1 || after > 60 {
		t.Fatalf("Retry-After estimate %d outside [1, 60]", after)
	}
	if a.stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", a.stats().Rejected)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	rel, _, err := a.acquire(context.Background(), "r", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(ctx, "r", 1)
		done <- err
	}()
	waitFor(t, func() bool { return a.stats().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if st := a.stats(); st.Queued != 0 {
		t.Fatalf("canceled waiter still queued: %+v", st)
	}
	// The abandoned slot was never granted: it is still free.
	rel()
	rel2, _, err := a.acquire(context.Background(), "r", 1)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	rel2()
}

func TestAdmissionOverweightRequestClamps(t *testing.T) {
	a := newAdmission(4, 4)
	// Weight beyond the whole limit must still be admittable (alone).
	rel, _, err := a.acquire(context.Background(), "r", 99)
	if err != nil {
		t.Fatalf("overweight acquire: %v", err)
	}
	if st := a.stats(); st.Inflight != 4 {
		t.Fatalf("clamped inflight = %d, want 4", st.Inflight)
	}
	rel()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSaturatedServerSheds429 saturates the limiter directly (grabbing
// the whole budget as a phantom stream) and asserts the HTTP layer
// sheds with 429 + Retry-After while health and metrics keep answering.
func TestSaturatedServerSheds429(t *testing.T) {
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: db, AdmissionLimit: 4, AdmissionQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rel, _, err := srv.admit.acquire(context.Background(), "phantom", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"id":"x","values":[1,2,3,4,5,6,7,8]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest answered %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Health and metrics bypass admission: they must answer while the
	// server is saturated — that is when they matter most.
	for _, path := range []string{"/healthz", "/metrics"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s answered %d while saturated, want 200", path, res.StatusCode)
		}
	}
	rel()
	// Capacity back: the same request admits.
	res, err = http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"id":"x","values":[1,2,3,4,5,6,7,8]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("post-release ingest answered %d, want 201", res.StatusCode)
	}
}

// TestHealthzDegraded503 drives the server's database into storage-fault
// read-only mode and asserts /healthz answers 503 with the JSON body
// intact, writes answer 503, reads answer 200 — and everything reverts
// on recovery.
func TestHealthzDegraded503(t *testing.T) {
	dir := t.TempDir()
	db, err := seqrep.OpenDir(dir, seqrep.Config{RecoveryProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(id string) int {
		res, err := http.Post(ts.URL+"/v1/ingest", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":%q,"values":[1,2,3,4,5,6,7,8,9,10,11,12]}`, id)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode
	}
	if code := post("ok"); code != http.StatusCreated {
		t.Fatalf("healthy ingest = %d", code)
	}

	failErr := errors.New("injected: disk gone")
	db.SetWALFault(func() error { return failErr }, nil)
	if code := post("doomed"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest = %d, want 503", code)
	}
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr api.HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d, want 503", res.StatusCode)
	}
	if !hr.Degraded || hr.Status != "degraded" || hr.DegradedCause == "" || hr.DegradedSince == nil {
		t.Fatalf("degraded healthz body = %+v", hr)
	}
	// Reads still answer 200.
	res, err = http.Get(ts.URL + "/v1/records/ok")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded = %d, want 200", res.StatusCode)
	}

	db.SetWALFault(nil, nil)
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("recovered healthz = %d, want 200", res.StatusCode)
	}
	if code := post("after"); code != http.StatusCreated {
		t.Fatalf("post-recovery ingest = %d", code)
	}
}

// TestHealthzCheckpointStreak503 asserts a consecutive-checkpoint-failure
// streak at the configured limit flips /healthz to 503 ("unhealthy"),
// and one success clears it.
func TestHealthzCheckpointStreak503(t *testing.T) {
	dir := t.TempDir()
	db, err := seqrep.OpenDir(dir, seqrep.Config{RecoveryProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(Config{DB: db, CheckpointFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := db.Ingest("a", seqrep.NewSequence([]float64{1, 2, 3, 4, 5, 6, 7, 8})); err != nil {
		t.Fatal(err)
	}
	// A writer that always fails makes every checkpoint fail without
	// touching the log.
	db.WrapCheckpointWriter(func(w io.Writer) io.Writer { return failingWriter{} })
	health := func() (int, api.HealthResponse) {
		res, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var hr api.HealthResponse
		if err := json.NewDecoder(res.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, hr
	}

	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint unexpectedly succeeded")
	}
	if code, hr := health(); code != http.StatusOK || hr.CheckpointFailStreak != 1 {
		t.Fatalf("after 1 failure: %d %+v", code, hr)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint unexpectedly succeeded")
	}
	code, hr := health()
	if code != http.StatusServiceUnavailable || hr.Status != "unhealthy" || hr.CheckpointFailStreak != 2 {
		t.Fatalf("at streak limit: %d %+v", code, hr)
	}

	db.WrapCheckpointWriter(nil)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after clearing: %v", err)
	}
	if code, hr := health(); code != http.StatusOK || hr.CheckpointFailStreak != 0 {
		t.Fatalf("after success: %d %+v", code, hr)
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errors.New("injected: checkpoint writer failure")
}
