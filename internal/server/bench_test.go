package server

// BenchmarkServerQuery measures one full HTTP round trip of a planner-
// routed distance query against a 512-sequence corpus, hot (result cache
// serving at a stable generation) versus cold (cache disabled, every
// request re-executes). Both servers wrap the same database, so the gap
// is purely the cache. The run emits BENCH_server.json, the serving
// layer's perf-trajectory record (compare BENCH_query.json for the
// engine-level planner).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"seqrep"
	"seqrep/api"
	"seqrep/client"
)

const benchCorpusN = 512

func benchServers(b *testing.B) (hot, cold *client.Client) {
	b.Helper()
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive()})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]seqrep.BatchItem, 0, benchCorpusN)
	for i := 0; i < benchCorpusN; i++ {
		first := 5 + float64(i%8)
		s, err := seqrep.GenerateFever(seqrep.FeverOpts{
			Samples: 97, FirstPeak: first, SecondPeak: first + 5 + float64(i%5),
		})
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, seqrep.BatchItem{
			ID:  fmt.Sprintf("fever-%04d", i),
			Seq: s.ShiftValue(float64(i%100) * 0.05),
		})
	}
	if _, err := db.IngestBatch(items); err != nil {
		b.Fatal(err)
	}
	_, hot = testServer(b, Config{DB: db})
	_, cold = testServer(b, Config{DB: db, CacheSize: -1})
	return hot, cold
}

type benchServerReport struct {
	Benchmark string  `json:"benchmark"`
	Sequences int     `json:"sequences"`
	Statement string  `json:"statement"`
	HotNsOp   float64 `json:"hot_ns_per_op"`
	ColdNsOp  float64 `json:"cold_ns_per_op"`
	Speedup   float64 `json:"cache_speedup"`
	Matches   int     `json:"matches"`
}

func BenchmarkServerQuery(b *testing.B) {
	ctx := context.Background()
	hot, cold := benchServers(b)
	const stmt = `MATCH DISTANCE LIKE fever-0000 METRIC l2 EPS 2`
	report := benchServerReport{
		Benchmark: "ServerQuery",
		Sequences: benchCorpusN,
		Statement: stmt,
	}

	run := func(b *testing.B, c *client.Client, wantCached bool) *api.QueryResponse {
		b.Helper()
		// Prime outside the timed region (fills the hot cache; for the
		// cold server, warms connections).
		res, err := c.Query(ctx, stmt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err = c.Query(ctx, stmt); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Cached != wantCached {
			b.Fatalf("cached = %v, want %v", res.Cached, wantCached)
		}
		return res
	}

	b.Run("hot", func(b *testing.B) {
		res := run(b, hot, true)
		report.HotNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		report.Matches = len(res.IDs)
	})
	b.Run("cold", func(b *testing.B) {
		run(b, cold, false)
		report.ColdNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if report.HotNsOp > 0 && report.ColdNsOp > 0 {
		report.Speedup = report.ColdNsOp / report.HotNsOp
		b.ReportMetric(report.Speedup, "cache_speedup")
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_server.json", append(blob, '\n'), 0o644); err != nil {
			b.Logf("BENCH_server.json not written: %v", err)
		}
	}
}

// BenchmarkServerIngest measures the HTTP ingest round trip (pipeline
// included), the write-side cost a capacity plan needs next to the query
// numbers.
func BenchmarkServerIngest(b *testing.B) {
	ctx := context.Background()
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		b.Fatal(err)
	}
	_, c := testServer(b, Config{DB: db})
	s, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		b.Fatal(err)
	}
	item := api.IngestRequest{Times: s.Times(), Values: s.Values()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item.ID = fmt.Sprintf("bench-%d", i)
		if _, err := c.Ingest(ctx, item); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerQueryHotpath measures the uncached HTTP query round trip
// against a 16k-sequence corpus with the vantage-point-tree hot path on
// (default) and off (IndexLeaf < 0, the linear feature scan) — the
// serving-layer view of the engine's candidate-generation speedup. Cache
// is disabled on both servers so every request re-executes the planner.
func BenchmarkServerQueryHotpath(b *testing.B) {
	ctx := context.Background()
	const n = 16384
	items := make([]seqrep.BatchItem, 0, n)
	for i := 0; i < n; i++ {
		first := 5 + float64(i%8)
		s, err := seqrep.GenerateFever(seqrep.FeverOpts{
			Samples: 97, FirstPeak: first, SecondPeak: first + 5 + float64(i%5),
		})
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, seqrep.BatchItem{
			ID:  fmt.Sprintf("fever-%04d", i),
			Seq: s.ShiftValue(float64(i%256) * 0.2),
		})
	}
	const stmt = `MATCH DISTANCE LIKE fever-0000 METRIC l2 EPS 2`
	for _, mode := range []struct {
		name string
		leaf int
	}{{"vptree", 0}, {"linear", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive(), IndexLeaf: mode.leaf})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.IngestBatch(items); err != nil {
				b.Fatal(err)
			}
			_, c := testServer(b, Config{DB: db, CacheSize: -1})
			res, err := c.Query(ctx, stmt) // warm: connections + trees
			if err != nil {
				b.Fatal(err)
			}
			if len(res.IDs) == 0 {
				b.Fatal("no matches")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Query(ctx, stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
