package server

// Soak test: N concurrent clients mixing Ingest/Remove/Query against a
// live server, meant to run under -race (CI does). Invariants held
// throughout, not just at the end:
//
//   - no request ever answers 5xx (4xx from losing a churn race — e.g. a
//     duplicate ingest — is legitimate);
//   - the indexed and scan plans agree: MATCH VALUE (routed through the
//     feature index) and MATCH DISTANCE METRIC linf (scan fallback) are
//     the same predicate (±ε band ⇔ L∞ ≤ ε, see internal/dist), so their
//     answers restricted to the never-removed stable corpus must be
//     identical on every single pair of calls.
//
// The workload mirrors equivalence_test.go: a stable jittered family the
// assertions read, plus churn ids the writers create and destroy.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"seqrep"
	"seqrep/client"
)

func TestSoakConcurrentClients(t *testing.T) {
	ctx := context.Background()
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive(), IndexCoeffs: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Config{DB: db})

	rng := rand.New(rand.NewSource(99))
	base := smoothWalk(rng, 64)
	const stable = 10
	for i := 0; i < stable; i++ {
		if _, err := c.Ingest(ctx, wireItem(fmt.Sprintf("base-%02d", i), jitter(rng, base, 0.2))); err != nil {
			t.Fatal(err)
		}
	}

	// no5xx fails the test on any server-side error; client-side rejects
	// are expected under churn.
	no5xx := func(what string, err error) bool {
		if err == nil {
			return true
		}
		var ae *client.APIError
		if errors.As(err, &ae) && ae.StatusCode < 500 {
			return false
		}
		t.Errorf("%s: %v", what, err)
		return false
	}

	stableIDs := func(ids []string) []string {
		out := []string{}
		for _, id := range ids {
			if strings.HasPrefix(id, "base-") {
				out = append(out, id)
			}
		}
		return sortedIDs(out)
	}

	const (
		writers    = 4
		queriers   = 4
		iterations = 25
	)
	var wg sync.WaitGroup

	// Writers churn disjoint id spaces: ingest a cousin of the base
	// family, read it back, remove it.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			churnRng := rand.New(rand.NewSource(int64(w) * 131))
			for i := 0; i < iterations; i++ {
				id := fmt.Sprintf("churn-%d-%d", w, i)
				if !no5xx("churn ingest", func() error {
					_, err := c.Ingest(ctx, wireItem(id, jitter(churnRng, base, 0.2)))
					return err
				}()) {
					continue
				}
				no5xx("churn record", func() error { _, err := c.Record(ctx, id); return err }())
				no5xx("churn remove", func() error { _, err := c.Remove(ctx, id); return err }())
			}
		}(w)
	}

	// Queriers hammer the two plans and compare their stable subsets.
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				eps := []float64{0, 1, 2, 8}[i%4]
				exemplar := fmt.Sprintf("base-%02d", (q+i)%stable)
				value, err := c.Query(ctx, fmt.Sprintf("MATCH VALUE LIKE %s EPS %g", exemplar, eps))
				if !no5xx("value query", err) {
					continue
				}
				scan, err := c.Query(ctx, fmt.Sprintf("MATCH DISTANCE LIKE %s METRIC linf EPS %g", exemplar, eps))
				if !no5xx("linf query", err) {
					continue
				}
				got, want := stableIDs(value.IDs), stableIDs(scan.IDs)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("eps=%g exemplar=%s: indexed value %v != scan linf %v", eps, exemplar, got, want)
				}
				// Mix in the other families so the cache and planner see
				// varied statements.
				no5xx("pattern query", func() error {
					_, err := c.Query(ctx, `FIND PATTERN "U+D+"`)
					return err
				}())
				no5xx("explain query", func() error {
					_, err := c.Query(ctx, fmt.Sprintf("EXPLAIN MATCH DISTANCE LIKE %s METRIC l2 EPS %g", exemplar, eps))
					return err
				}())
			}
		}(q)
	}
	wg.Wait()

	// Quiesced: the stable corpus is intact and the plans agree fully.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sequences != stable {
		t.Fatalf("after churn, %d sequences remain, want %d", h.Sequences, stable)
	}
	value, err := c.Query(ctx, `MATCH VALUE LIKE base-00 EPS 8`)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := c.Query(ctx, `MATCH DISTANCE LIKE base-00 METRIC linf EPS 8`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sortedIDs(value.IDs), sortedIDs(scan.IDs); !reflect.DeepEqual(got, want) {
		t.Fatalf("quiesced: indexed value %v != scan linf %v", got, want)
	}
	if len(value.IDs) == 0 {
		t.Fatal("quiesced equivalence check matched nothing: the soak exercised nothing")
	}

	// The metrics survived the stampede with sane counters.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `seqserved_requests_total{endpoint="POST /v1/query",code="200"}`) {
		t.Error("metrics lost the query counter")
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `code="5`) {
			t.Errorf("metrics recorded a server error: %s", line)
		}
	}
}
