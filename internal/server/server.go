// Package server exposes a seqrep database over HTTP/JSON: the querylang
// surface (/v1/query, including EXPLAIN), worker-pool batch ingestion,
// record CRUD, snapshot save/load, health, and Prometheus metrics. Wire
// types live in package api; a typed Go client in package client.
//
// The server holds one live *seqrep.DB (swappable by a snapshot load)
// and an LRU result cache keyed on each statement's canonical form. The
// cache is invalidated by the database's mutation generation: every
// committed Ingest/Remove/Load bumps the generation, every cache entry
// remembers the generation it was computed at, and an entry is served
// only while those agree. Canonicalization makes the key sound — spelling
// variants of one statement share an entry — and the generation makes it
// fresh without the cache knowing which entries a write affected.
//
// Per docs/ARCHITECTURE.md, this layer calls the façade (package seqrep)
// only; it never reaches into core internals.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqrep"
	"seqrep/api"
)

// DefaultCacheSize is the result-cache capacity when Config.CacheSize is
// zero.
const DefaultCacheSize = 256

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// zero: large enough for six-figure batch ingests, small enough that a
// hostile POST cannot exhaust server memory.
const DefaultMaxBodyBytes = 32 << 20

// DefaultAdmissionLimit is the weighted concurrency the server admits
// when Config.AdmissionLimit is zero: 64 weight units — e.g. sixteen
// concurrent similarity queries, or eight query streams alongside
// thirty-two ingests.
const DefaultAdmissionLimit = 64

// DefaultAdmissionQueue bounds the weighted work waiting for admission
// when Config.AdmissionQueue is zero. Beyond it the server sheds load
// with 429 rather than queueing without bound.
const DefaultAdmissionQueue = 256

// DefaultCheckpointFailLimit is how many consecutive checkpoint
// failures /healthz tolerates (when Config.CheckpointFailLimit is zero)
// before reporting the node unhealthy with 503.
const DefaultCheckpointFailLimit = 3

// Config parameterizes a Server.
type Config struct {
	// DB is the database to serve (required).
	DB *seqrep.DB
	// Snapshotter enables the /v1/snapshot endpoints; nil disables them.
	Snapshotter Snapshotter
	// CacheSize bounds the result cache in entries: 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// MaxBodyBytes caps each request body: 0 means DefaultMaxBodyBytes,
	// negative disables the cap. Oversized requests answer 413.
	MaxBodyBytes int64
	// QueryTimeout caps the execution time of each /v1/query and
	// /v1/query/stream statement (0 = no cap). A non-streamed query that
	// exceeds it answers 504; a stream emits an error frame.
	QueryTimeout time.Duration
	// QueryLimit caps the number of results any single statement may
	// return (0 = no cap): statements without their own LIMIT are
	// tightened to it server-side. Capped answers report
	// stats.truncated.
	QueryLimit int
	// AdmissionLimit bounds the weighted work served concurrently: 0
	// means DefaultAdmissionLimit, negative disables admission control.
	// Requests beyond the limit wait in a bounded queue; beyond the
	// queue they answer 429 with a Retry-After.
	AdmissionLimit int
	// AdmissionQueue bounds the weighted work waiting for admission: 0
	// means DefaultAdmissionQueue, negative means no queue (immediate
	// 429 past the limit).
	AdmissionQueue int
	// CheckpointFailLimit is the consecutive-checkpoint-failure streak
	// at which /healthz starts answering 503: 0 means
	// DefaultCheckpointFailLimit, negative disables the check.
	CheckpointFailLimit int
}

// Server is the HTTP serving layer. Create with New, mount via Handler.
// It is safe for any number of concurrent requests.
type Server struct {
	dbMu sync.RWMutex
	db   *seqrep.DB

	snap         Snapshotter
	cache        *resultCache // nil when disabled
	metrics      *metricsRegistry
	mux          *http.ServeMux
	bodyLimit    int64 // 0 = unlimited
	queryTimeout time.Duration
	queryLimit   int
	admit        *admission // nil when disabled
	ckptFailMax  uint64     // 0 = streak check disabled
}

// New builds a server around cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	limit := cfg.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	if limit < 0 {
		limit = 0
	}
	s := &Server{
		db:           cfg.DB,
		snap:         cfg.Snapshotter,
		metrics:      newMetricsRegistry(),
		mux:          http.NewServeMux(),
		bodyLimit:    limit,
		queryTimeout: cfg.QueryTimeout,
		queryLimit:   cfg.QueryLimit,
	}
	if size > 0 {
		s.cache = newResultCache(size)
	}
	if cfg.AdmissionLimit >= 0 {
		al := cfg.AdmissionLimit
		if al == 0 {
			al = DefaultAdmissionLimit
		}
		aq := cfg.AdmissionQueue
		if aq == 0 {
			aq = DefaultAdmissionQueue
		}
		if aq < 0 {
			aq = 0
		}
		s.admit = newAdmission(al, aq)
	}
	switch {
	case cfg.CheckpointFailLimit == 0:
		s.ckptFailMax = DefaultCheckpointFailLimit
	case cfg.CheckpointFailLimit > 0:
		s.ckptFailMax = uint64(cfg.CheckpointFailLimit)
	}
	s.route("POST /v1/query", weightQuery, s.handleQuery)
	s.route("POST /v1/query/stream", weightStream, s.handleQueryStream)
	s.route("POST /v1/ingest", weightIngest, s.handleIngest)
	s.route("POST /v1/ingest/batch", weightBatch, s.handleIngestBatch)
	s.route("GET /v1/records/{id}", weightRecord, s.handleGetRecord)
	s.route("DELETE /v1/records/{id}", weightRecord, s.handleRemoveRecord)
	s.route("POST /v1/snapshot/save", weightSnapshot, s.handleSnapshotSave)
	s.route("POST /v1/snapshot/load", weightSnapshot, s.handleSnapshotLoad)
	s.route("GET /healthz", 0, s.handleHealth)
	s.route("GET /metrics", 0, s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// DB returns the currently served database (a snapshot load swaps it).
func (s *Server) DB() *seqrep.DB {
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	return s.db
}

// Snapshot saves the current database through the configured
// snapshotter — the graceful-shutdown path of cmd/seqserved.
func (s *Server) Snapshot() error {
	if s.snap == nil {
		return fmt.Errorf("server: no snapshotter configured")
	}
	return s.snap.Save(s.DB())
}

// route mounts handler under pattern with the admission and metrics
// middleware, labeling observations by the route pattern so cardinality
// stays bounded. weight is the request's admission cost; 0 bypasses
// admission control entirely (health and metrics must answer even — and
// especially — while the server is saturated).
func (s *Server) route(pattern string, weight int, handler http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		if s.bodyLimit > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.bodyLimit)
		}
		if s.admit != nil && weight > 0 {
			release, after, err := s.admit.acquire(r.Context(), pattern, weight)
			switch {
			case errors.Is(err, errOverloaded):
				rec.Header().Set("Retry-After", strconv.Itoa(after))
				writeError(rec, http.StatusTooManyRequests, err)
			case err != nil:
				// The client hung up while queued: nobody will read the
				// response, but the metrics should not call it ours.
				writeError(rec, 499, err)
			default:
				func() {
					defer release()
					handler(rec, r)
				}()
			}
		} else {
			handler(rec, r)
		}
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.metrics.observe(pattern, rec.code, time.Since(start))
	})
}

// ---- JSON plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.ErrorResponse{Error: err.Error()})
}

// decodeJSON reads one JSON body strictly (unknown fields rejected, no
// trailing garbage).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data")
	}
	return nil
}

// decodeStatus classifies a decodeJSON failure: an oversized body (the
// route middleware's MaxBytesReader tripped) is 413, everything else 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusOf maps a database error onto an HTTP status: unknown ids are
// 404, duplicates 409, storage faults (a stored record whose comparison
// form cannot be read — the request was fine, the data layer was not)
// 500, a query that outran the server's -query-timeout 504, a request
// whose client hung up mid-query 499 (the nginx convention — nobody
// receives the response, but the metrics should not call it a client or
// server fault), everything else a client-side 422 (the request was
// well-formed JSON but the engine rejected it).
func statusOf(err error) int {
	switch {
	case errors.Is(err, seqrep.ErrDegraded):
		// Storage-fault read-only mode: not the request's fault and not a
		// bug — the node is telling load balancers and retrying clients to
		// go elsewhere until the disk recovers.
		return http.StatusServiceUnavailable
	case errors.Is(err, seqrep.ErrStorage):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, seqrep.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, seqrep.ErrDuplicateID):
		return http.StatusConflict
	default:
		return http.StatusUnprocessableEntity
	}
}

// ---- /v1/query ----

// queryCtx derives a statement's execution context from the request:
// client disconnects cancel it, and the configured QueryTimeout bounds
// it.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.queryTimeout)
	}
	return context.WithCancel(r.Context())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	q, err := seqrep.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := q.String() // canonical form: the cache key (before the server cap)
	db := s.DB()
	// The generation is read before executing: a write committing during
	// execution bumps it, so the entry stored below can never be served
	// after that write — lookups compare against the then-current value.
	gen := db.Generation()
	if s.cache != nil {
		if resp := s.cache.get(key, db, gen); resp != nil {
			hit := *resp
			hit.Cached = true
			writeJSON(w, http.StatusOK, &hit)
			return
		}
	}
	// The server-wide result cap is a constant of this server instance,
	// so caching the capped answer under the uncapped canonical form is
	// sound: every request through this cache gets the same cap.
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	res, err := seqrep.RunQueryCtx(ctx, db, seqrep.LimitQuery(q, s.queryLimit))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	resp := toQueryResponse(res, key, gen)
	// The put is skipped when a snapshot load swapped the database while
	// this query ran: a stale-instance entry could never be served (get
	// checks the instance) but would clobber fresher entries and keep the
	// whole swapped-out database reachable from the cache.
	if s.cache != nil && s.DB() == db {
		s.cache.put(key, db, gen, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// toQueryResponse converts an engine result into its wire form.
func toQueryResponse(res *seqrep.QueryResult, canonical string, gen uint64) *api.QueryResponse {
	resp := &api.QueryResponse{
		Kind:       res.Kind,
		Canonical:  canonical,
		IDs:        res.IDs,
		Explain:    res.Explain,
		Generation: gen,
	}
	if resp.IDs == nil {
		resp.IDs = []string{}
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, api.Match{ID: m.ID, Exact: m.Exact, Deviations: m.Deviations})
	}
	for _, h := range res.Hits {
		resp.Hits = append(resp.Hits, api.PatternHit{
			ID: h.ID, SegLo: h.SegLo, SegHi: h.SegHi, TimeLo: h.TimeLo, TimeHi: h.TimeHi,
		})
	}
	for _, iv := range res.Intervals {
		resp.Intervals = append(resp.Intervals, api.IntervalMatch{
			ID: iv.ID, Positions: iv.Positions, Intervals: iv.Intervals,
		})
	}
	if res.Stats != nil {
		resp.Stats = toAPIStats(res.Stats)
	}
	return resp
}

// toAPIStats converts engine query stats into their wire form.
func toAPIStats(st *seqrep.QueryStats) *api.QueryStats {
	return &api.QueryStats{
		Query:        st.Query,
		Metric:       st.Metric,
		Plan:         st.Plan,
		Examined:     st.Examined,
		Candidates:   st.Candidates,
		Pruned:       st.Pruned,
		Matches:      st.Matches,
		Sketched:     st.Sketched,
		BandAccepted: st.BandAccepted,
		Truncated:    st.Truncated,
	}
}

// ---- /v1/ingest ----

// toSequence builds the engine sequence an IngestRequest describes.
func toSequence(item api.IngestRequest) (seqrep.Sequence, error) {
	if item.Times == nil {
		return seqrep.NewSequence(item.Values), nil
	}
	return seqrep.NewSequenceFromSamples(item.Times, item.Values)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req api.IngestRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	seqv, err := toSequence(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	db := s.DB()
	rec, err := db.IngestRecord(req.ID, seqv)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, api.IngestResponse{
		ID:         req.ID,
		Samples:    rec.N,
		Segments:   rec.NumSegments(),
		Symbols:    rec.Profile.Symbols,
		Generation: db.Generation(),
	})
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	// Items whose sequence cannot even be constructed (times/values
	// length mismatch) fail up front; the rest go through the worker
	// pool. Indexes in the response always refer to the request order.
	items := make([]seqrep.BatchItem, 0, len(req.Items))
	requestIndex := make([]int, 0, len(req.Items))
	var failed []api.BatchItemError
	for i, item := range req.Items {
		sv, err := toSequence(item)
		if err != nil {
			failed = append(failed, api.BatchItemError{Index: i, ID: item.ID, Error: err.Error()})
			continue
		}
		items = append(items, seqrep.BatchItem{ID: item.ID, Seq: sv})
		requestIndex = append(requestIndex, i)
	}
	db := s.DB()
	n, itemErrs := db.IngestBatchItems(items)
	for _, ie := range itemErrs {
		failed = append(failed, api.BatchItemError{
			Index: requestIndex[ie.Index],
			ID:    ie.ID,
			Error: ie.Err.Error(),
		})
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
	resp := api.BatchResponse{
		Requested:  len(req.Items),
		Ingested:   n,
		Failed:     failed,
		Generation: db.Generation(),
	}
	code := http.StatusOK
	if len(failed) > 0 {
		code = http.StatusMultiStatus
	}
	writeJSON(w, code, resp)
}

// ---- /v1/records/{id} ----

func (s *Server) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.DB().Record(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", seqrep.ErrUnknownID, id))
		return
	}
	writeJSON(w, http.StatusOK, api.RecordResponse{
		ID:        rec.ID,
		Samples:   rec.N,
		Segments:  rec.NumSegments(),
		Peaks:     len(rec.Profile.Peaks),
		Symbols:   rec.Profile.Symbols,
		Intervals: rec.Profile.Intervals,
	})
}

func (s *Server) handleRemoveRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	db := s.DB()
	if err := db.Remove(id); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, api.RemoveResponse{
		ID:         id,
		Sequences:  db.Len(),
		Generation: db.Generation(),
	})
}

// ---- /v1/snapshot ----

func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	if s.snap == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("no snapshot store configured"))
		return
	}
	db := s.DB()
	if err := s.snap.Save(db); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := api.SnapshotResponse{
		Op:         "save",
		Sequences:  db.Len(),
		Generation: db.Generation(),
	}
	// Against a durable database the save ran as a checkpoint: name it,
	// and report the (freshly truncated) log depth.
	if st, ok := db.WALStats(); ok {
		resp.Op = "checkpoint"
		resp.WALRecords = st.Records
		resp.WALBytes = st.Bytes
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshotLoad(w http.ResponseWriter, r *http.Request) {
	if s.snap == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("no snapshot store configured"))
		return
	}
	db, err := s.snap.Load()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrSwapUnsupported) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	s.dbMu.Lock()
	s.db = db
	s.dbMu.Unlock()
	// The new database starts its own generation sequence, which may
	// collide with values cached from the old one — drop everything.
	if s.cache != nil {
		s.cache.clear()
	}
	writeJSON(w, http.StatusOK, api.SnapshotResponse{
		Op:         "load",
		Sequences:  db.Len(),
		Generation: db.Generation(),
	})
}

// ---- health + metrics ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	resp := api.HealthResponse{
		Status:     "ok",
		Sequences:  db.Len(),
		Generation: db.Generation(),
	}
	code := http.StatusOK
	if st, ok := db.WALStats(); ok {
		resp.Durable = true
		resp.WALRecords = st.Records
		resp.WALBytes = st.Bytes
		resp.WALSegments = st.Segments
		resp.CheckpointFailures = st.CheckpointFailures
		resp.CheckpointFailStreak = st.CheckpointFailStreak
		resp.LastCheckpointError = st.LastCheckpointError
		if !st.LastCheckpoint.IsZero() {
			age := checkpointAge(st.LastCheckpoint)
			resp.LastCheckpointAgeSeconds = &age
		}
		// A checkpoint-failure streak means the log is no longer being
		// truncated: the node still serves, but it must stop reporting
		// healthy before the disk fills.
		if s.ckptFailMax > 0 && st.CheckpointFailStreak >= s.ckptFailMax {
			resp.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
	}
	deg := db.DegradedStatus()
	resp.Recoveries = deg.Recoveries
	if deg.Degraded {
		resp.Status = "degraded"
		resp.Degraded = true
		resp.DegradedCause = deg.Cause
		if !deg.Since.IsZero() {
			since := checkpointAge(deg.Since)
			resp.DegradedSince = &since
		}
		code = http.StatusServiceUnavailable
	}
	if s.admit != nil {
		st := s.admit.stats()
		resp.Admission = &st
	}
	if st, ok := db.SegmentStats(); ok {
		resp.SegmentCount = st.Segments
		resp.SegmentEntries = st.Entries
		resp.SegmentTombstones = st.Tombstones
		resp.SegmentBytes = st.Bytes
		resp.Compactions = st.Compactions
	}
	if st, ok := db.ResidencyStats(); ok {
		resp.MemoryBudget = st.MemoryBudget
		resp.ResidentRecords = st.ResidentRecords
		resp.ResidentBytes = st.ResidentBytes
		resp.ResidentPinned = st.Pinned
		resp.Evictions = st.Evictions
		resp.ColdHits = st.ColdHits
	}
	// Load balancers and probes read the status code; humans and tests
	// read the body — both are always present.
	writeJSON(w, code, resp)
}

// boolGauge renders a boolean as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// checkpointAge is time.Since clamped at zero: boot stamps the last
// checkpoint from a file's modification time, which a restore-from-backup
// or clock skew can place in the future — a negative age would read as
// nonsense (and trip naive freshness alerts), so it floors to "just now".
func checkpointAge(t time.Time) float64 {
	age := time.Since(t).Seconds()
	if age < 0 {
		return 0
	}
	return age
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	var b strings.Builder
	s.metrics.render(&b)
	if s.cache != nil {
		st := s.cache.stats()
		fmt.Fprintf(&b, "# HELP seqserved_cache_hits_total Result cache hits.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_cache_hits_total counter\n")
		fmt.Fprintf(&b, "seqserved_cache_hits_total %d\n", st.hits)
		fmt.Fprintf(&b, "seqserved_cache_misses_total %d\n", st.misses)
		fmt.Fprintf(&b, "seqserved_cache_invalidations_total %d\n", st.invalidations)
		fmt.Fprintf(&b, "seqserved_cache_entries %d\n", st.entries)
	}
	fmt.Fprintf(&b, "seqserved_generation %d\n", db.Generation())
	fmt.Fprintf(&b, "seqserved_sequences %d\n", db.Len())
	if s.admit != nil {
		st := s.admit.stats()
		fmt.Fprintf(&b, "# HELP seqserved_admission_inflight Weighted work currently admitted.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_admission_inflight gauge\n")
		fmt.Fprintf(&b, "seqserved_admission_inflight %d\n", st.Inflight)
		fmt.Fprintf(&b, "seqserved_admission_limit %d\n", st.Limit)
		fmt.Fprintf(&b, "# HELP seqserved_admission_queued Weighted work waiting for admission.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_admission_queued gauge\n")
		fmt.Fprintf(&b, "seqserved_admission_queued %d\n", st.Queued)
		fmt.Fprintf(&b, "# HELP seqserved_admission_rejected_total Requests shed with 429 since boot.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_admission_rejected_total counter\n")
		fmt.Fprintf(&b, "seqserved_admission_rejected_total %d\n", st.Rejected)
	}
	deg := db.DegradedStatus()
	fmt.Fprintf(&b, "# HELP seqserved_degraded Storage-fault read-only mode (1 while writes are disabled).\n")
	fmt.Fprintf(&b, "# TYPE seqserved_degraded gauge\n")
	fmt.Fprintf(&b, "seqserved_degraded %d\n", boolGauge(deg.Degraded))
	fmt.Fprintf(&b, "seqserved_degraded_transitions_total %d\n", deg.Transitions)
	fmt.Fprintf(&b, "seqserved_degraded_recoveries_total %d\n", deg.Recoveries)
	if st, ok := db.WALStats(); ok {
		fmt.Fprintf(&b, "# HELP seqserved_wal_records Write-ahead-log records a crash would replay.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_wal_records gauge\n")
		fmt.Fprintf(&b, "seqserved_wal_records %d\n", st.Records)
		fmt.Fprintf(&b, "seqserved_wal_bytes %d\n", st.Bytes)
		fmt.Fprintf(&b, "seqserved_wal_segments %d\n", st.Segments)
		fmt.Fprintf(&b, "# HELP seqserved_checkpoint_failures_total Checkpoints that failed since boot.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_checkpoint_failures_total counter\n")
		fmt.Fprintf(&b, "seqserved_checkpoint_failures_total %d\n", st.CheckpointFailures)
		if !st.LastCheckpoint.IsZero() {
			fmt.Fprintf(&b, "seqserved_last_checkpoint_age_seconds %g\n", checkpointAge(st.LastCheckpoint))
		}
	}
	if st, ok := db.SegmentStats(); ok {
		fmt.Fprintf(&b, "# HELP seqserved_segment_count On-disk segment files in the checkpoint tier.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_segment_count gauge\n")
		fmt.Fprintf(&b, "seqserved_segment_count %d\n", st.Segments)
		fmt.Fprintf(&b, "seqserved_segment_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "seqserved_segment_tombstones %d\n", st.Tombstones)
		fmt.Fprintf(&b, "seqserved_segment_bytes %d\n", st.Bytes)
		fmt.Fprintf(&b, "# HELP seqserved_segment_compactions_total Segment-tier compactions since boot.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_segment_compactions_total counter\n")
		fmt.Fprintf(&b, "seqserved_segment_compactions_total %d\n", st.Compactions)
		fmt.Fprintf(&b, "seqserved_segment_cache_hits_total %d\n", st.Cache.Hits)
		fmt.Fprintf(&b, "seqserved_segment_cache_misses_total %d\n", st.Cache.Misses)
		fmt.Fprintf(&b, "seqserved_segment_cache_bytes %d\n", st.Cache.Bytes)
	}
	if st, ok := db.ResidencyStats(); ok {
		fmt.Fprintf(&b, "# HELP seqserved_resident_records Record payloads currently resident in RAM.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_resident_records gauge\n")
		fmt.Fprintf(&b, "seqserved_resident_records %d\n", st.ResidentRecords)
		fmt.Fprintf(&b, "seqserved_resident_bytes %d\n", st.ResidentBytes)
		fmt.Fprintf(&b, "seqserved_memory_budget_bytes %d\n", st.MemoryBudget)
		fmt.Fprintf(&b, "seqserved_resident_pinned %d\n", st.Pinned)
		fmt.Fprintf(&b, "# HELP seqserved_evictions_total Payloads paged out to the segment tier since boot.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_evictions_total counter\n")
		fmt.Fprintf(&b, "seqserved_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(&b, "# HELP seqserved_cold_hits_total Reads that paged a payload back in from the segment tier.\n")
		fmt.Fprintf(&b, "# TYPE seqserved_cold_hits_total counter\n")
		fmt.Fprintf(&b, "seqserved_cold_hits_total %d\n", st.ColdHits)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
