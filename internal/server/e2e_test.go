package server

// The end-to-end harness of the serving subsystem: one lifecycle walking
// ingest -> distance/value/pattern queries -> EXPLAIN stats -> cache
// hit/miss across a Remove (generation invalidation) -> snapshot save ->
// a second server restarted from the snapshot answering identically.
// Everything runs through the typed client over real HTTP (httptest).

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"seqrep"
	"seqrep/api"
	"seqrep/client"
)

func sortedIDs(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

func TestEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "db.bin")

	// The archive persists on disk alongside the snapshot, so the
	// restarted server compares the very same raw samples.
	arch, err := seqrep.NewFileArchive(filepath.Join(dir, "raws"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqrep.Config{Archive: arch}
	snap := &FileSnapshotter{Path: snapPath, Config: cfg}
	db, err := seqrep.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Config{DB: db, Snapshotter: snap})

	// ---- ingest a corpus through the batch endpoint ----
	rng := rand.New(rand.NewSource(7))
	baseA := smoothWalk(rng, 64)
	baseB := smoothWalk(rng, 64)
	var items []api.IngestRequest
	for i := 0; i < 6; i++ {
		items = append(items,
			wireItem(fmt.Sprintf("a-%02d", i), jitter(rng, baseA, 0.2)),
			wireItem(fmt.Sprintf("b-%02d", i), jitter(rng, baseB, 0.2)))
	}
	for i := 0; i < 3; i++ {
		items = append(items, wireItem(fmt.Sprintf("short-%02d", i), smoothWalk(rng, 32)))
	}
	batch, err := c.IngestBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Ingested != len(items) || len(batch.Failed) != 0 {
		t.Fatalf("batch = %+v, want all %d ingested", batch, len(items))
	}

	// ---- the query set the restarted server must reproduce ----
	statements := []string{
		`MATCH DISTANCE LIKE a-00 METRIC l2 EPS 64`,
		`MATCH DISTANCE LIKE a-00 METRIC zl2 EPS 2`,
		`MATCH VALUE LIKE a-01 EPS 8`,
		`FIND PATTERN "U+D+"`,
		`MATCH PEAKS 2 TOLERANCE 2`,
	}
	run := func(c *client.Client) map[string]*api.QueryResponse {
		out := make(map[string]*api.QueryResponse, len(statements))
		for _, stmt := range statements {
			res, err := c.Query(ctx, stmt)
			if err != nil {
				t.Fatalf("%s: %v", stmt, err)
			}
			out[stmt] = res
		}
		return out
	}
	before := run(c)
	if got := before[statements[0]]; len(got.IDs) < 12 {
		t.Fatalf("wide distance query matched %d ids, want the whole length-64 corpus", len(got.IDs))
	}
	if got := before[statements[3]]; len(got.Hits) == 0 {
		t.Fatal("pattern query found no occurrences")
	}

	// ---- EXPLAIN reports the plan and its work ----
	exp, err := c.Query(ctx, `EXPLAIN MATCH DISTANCE LIKE a-00 METRIC l2 EPS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Explain || exp.Stats == nil {
		t.Fatalf("EXPLAIN response %+v lacks stats", exp)
	}
	if exp.Stats.Plan != "index" {
		t.Fatalf("EXPLAIN plan = %q, want index", exp.Stats.Plan)
	}
	if exp.Stats.Examined == 0 || exp.Stats.Candidates+exp.Stats.Pruned != exp.Stats.Examined {
		t.Fatalf("EXPLAIN stats don't add up: %+v", exp.Stats)
	}

	// ---- cache: hit, then generation-invalidated across a Remove ----
	wide := statements[0]
	hit, err := c.Query(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("repeat of an executed statement missed the cache")
	}
	if !reflect.DeepEqual(hit.IDs, before[wide].IDs) {
		t.Fatal("cached answer differs from the computed one")
	}
	victim := "b-03"
	if !contains(before[wide].IDs, victim) {
		t.Fatalf("precondition: %s should match %q", wide, victim)
	}
	if _, err := c.Remove(ctx, victim); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("query served from cache across a Remove: generation bump did not invalidate")
	}
	if contains(after.IDs, victim) {
		t.Fatalf("removed sequence %q still matches", victim)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seqserved_cache_hits_total 1", "seqserved_cache_invalidations_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lack %q after the hit/invalidate cycle:\n%s", want, metrics)
		}
	}
	before = run(c) // the answer set the restarted server must match

	// ---- snapshot, then restart from it ----
	saved, err := c.SaveSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Sequences != len(items)-1 {
		t.Fatalf("snapshot reports %d sequences, want %d", saved.Sequences, len(items)-1)
	}

	db2, err := snap.Load()
	if err != nil {
		t.Fatalf("restart: loading snapshot: %v", err)
	}
	_, c2 := testServer(t, Config{DB: db2, Snapshotter: snap})
	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sequences != saved.Sequences {
		t.Fatalf("restarted server holds %d sequences, want %d", h.Sequences, saved.Sequences)
	}
	after2 := run(c2)
	for _, stmt := range statements {
		want, got := before[stmt], after2[stmt]
		if !reflect.DeepEqual(want.IDs, got.IDs) {
			t.Errorf("%s: ids diverge across restart:\n  before %v\n  after  %v", stmt, want.IDs, got.IDs)
		}
		if !reflect.DeepEqual(want.Matches, got.Matches) {
			t.Errorf("%s: matches diverge across restart:\n  before %+v\n  after  %+v", stmt, want.Matches, got.Matches)
		}
		if !reflect.DeepEqual(want.Hits, got.Hits) {
			t.Errorf("%s: hits diverge across restart", stmt)
		}
	}

	// The restarted server keeps serving writes: the removed id is free
	// again and a re-ingest shows up in queries.
	if _, err := c2.Ingest(ctx, wireItem(victim, jitter(rng, baseB, 0.2))); err != nil {
		t.Fatalf("re-ingest after restart: %v", err)
	}
	res, err := c2.Query(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.IDs, victim) {
		t.Fatalf("re-ingested %q absent from %s", victim, wide)
	}
}

// TestSnapshotLoadEndpoint exercises the in-place /v1/snapshot/load swap:
// mutations after a save are rolled back by loading, and the cache does
// not leak pre-load answers.
func TestSnapshotLoadEndpoint(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := seqrep.Config{}
	snap := &FileSnapshotter{Path: filepath.Join(dir, "db.bin"), Config: cfg}
	db, err := seqrep.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Config{DB: db, Snapshotter: snap})

	for i := 0; i < 3; i++ {
		if _, err := c.Ingest(ctx, feverItem(t, fmt.Sprintf("keep-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, feverItem(t, "transient", 5)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.IDs, "transient") {
		t.Fatal("precondition: transient sequence should match")
	}

	loaded, err := c.LoadSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sequences != 3 {
		t.Fatalf("loaded snapshot holds %d sequences, want 3", loaded.Sequences)
	}
	res, err = c.Query(ctx, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("post-load query served from the pre-load cache")
	}
	if contains(res.IDs, "transient") {
		t.Fatal("rolled-back sequence still matches after snapshot load")
	}
	if len(res.IDs) != 3 {
		t.Fatalf("post-load query matches %v, want the 3 kept sequences", res.IDs)
	}
}

func contains(ids []string, id string) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
