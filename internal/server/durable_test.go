package server

// Durable-mode server tests: a DirSnapshotter-backed server must report
// the write-ahead log in /healthz and /metrics, turn /v1/snapshot/save
// into a checkpoint, refuse /v1/snapshot/load (409), and recover every
// acknowledged write across a reboot of the same data directory.

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqrep"
	"seqrep/client"
	"seqrep/internal/store"
)

func durableServer(t *testing.T, dir string) (*Server, *client.Client, *DirSnapshotter) {
	t.Helper()
	snap := &DirSnapshotter{Dir: dir, Config: seqrep.Config{}}
	db, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, cl := testServer(t, Config{DB: db, Snapshotter: snap})
	return srv, cl, snap
}

func TestDurableServerLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv, cl, snap := durableServer(t, dir)

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Durable || h.WALRecords != 0 || h.LastCheckpointAgeSeconds != nil {
		t.Fatalf("fresh durable health = %+v", h)
	}

	for i := 0; i < 3; i++ {
		if _, err := cl.Ingest(ctx, feverItem(t, "rec"+string(rune('a'+i)), i)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.WALRecords != 3 || h.WALBytes == 0 || h.WALSegments == 0 {
		t.Fatalf("health after 3 ingests = %+v", h)
	}

	// Save runs as a checkpoint: log truncated, operation renamed.
	sr, err := cl.SaveSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Op != "checkpoint" || sr.Sequences != 3 || sr.WALRecords != 0 {
		t.Fatalf("SaveSnapshot = %+v", sr)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.WALRecords != 0 || h.LastCheckpointAgeSeconds == nil {
		t.Fatalf("health after checkpoint = %+v", h)
	}

	// Hot-swapping a live log is refused, loudly.
	if _, err := cl.LoadSnapshot(ctx); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("LoadSnapshot against durable server: %v, want a 409 refusal", err)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seqserved_wal_records", "seqserved_wal_bytes", "seqserved_wal_segments", "seqserved_last_checkpoint_age_seconds"} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Write after the checkpoint, then reboot the directory: both the
	// checkpointed and the logged-only records must come back.
	if _, err := cl.Ingest(ctx, feverItem(t, "late", 7)); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := snap.Open()
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 4 {
		t.Fatalf("rebooted Len = %d, want 4", db2.Len())
	}
	rec := db2.Recovery()
	if rec.Replayed != 1 || rec.Applied != 1 {
		t.Fatalf("reboot Recovery = %+v; want exactly the post-checkpoint ingest", rec)
	}
}

// TestCheckpointFailureVisibleInProbes: a checkpoint that cannot write
// its segment must answer the save with an error, count and describe
// itself in /healthz and /metrics, and leave the write path untouched —
// ingests keep committing to the WAL while the operator gets paged.
func TestCheckpointFailureVisibleInProbes(t *testing.T) {
	ctx := context.Background()
	srv, cl, _ := durableServer(t, t.TempDir())

	if _, err := cl.Ingest(ctx, feverItem(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	srv.DB().WrapCheckpointWriter(func(w io.Writer) io.Writer {
		return store.NewFailAfterWriter(w, 1)
	})
	if _, err := cl.SaveSnapshot(ctx); err == nil {
		t.Fatal("save with a failing segment writer reported success")
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.CheckpointFailures != 1 || h.LastCheckpointError == "" {
		t.Fatalf("health after failed checkpoint = %+v; want the failure counted and described", h)
	}
	// The log, not the checkpoint, is the durability contract: writes
	// must still commit while checkpoints fail.
	if _, err := cl.Ingest(ctx, feverItem(t, "b", 2)); err != nil {
		t.Fatalf("ingest during checkpoint outage: %v", err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "seqserved_checkpoint_failures_total 1") {
		t.Fatalf("metrics missing the failure counter:\n%s", m)
	}

	// Healing clears the error but not the cumulative counter.
	srv.DB().WrapCheckpointWriter(nil)
	if _, err := cl.SaveSnapshot(ctx); err != nil {
		t.Fatalf("healed save: %v", err)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.CheckpointFailures != 1 || h.LastCheckpointError != "" {
		t.Fatalf("health after healed checkpoint = %+v; want counter kept, error cleared", h)
	}
	if h.SegmentCount < 1 || h.SegmentEntries != 2 {
		t.Fatalf("health segment tier = %+v; want both records flushed", h)
	}
}

// TestCheckpointAgeNeverNegative: boot stamps the last checkpoint from
// the manifest's modification time; restore-from-backup or clock skew
// can place that in the future, and the reported age must clamp to zero
// rather than go negative in either probe.
func TestCheckpointAgeNeverNegative(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv, cl, snap := durableServer(t, dir)
	if _, err := cl.Ingest(ctx, feverItem(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SaveSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().Close(); err != nil {
		t.Fatal(err)
	}

	future := time.Now().Add(2 * time.Hour)
	manifest := filepath.Join(dir, "segments", "MANIFEST")
	if err := os.Chtimes(manifest, future, future); err != nil {
		t.Fatal(err)
	}
	db2, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	_, cl2 := testServer(t, Config{DB: db2, Snapshotter: snap})

	h, err := cl2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.LastCheckpointAgeSeconds == nil {
		t.Fatal("rebooted durable health lost last_checkpoint_age_seconds")
	}
	if *h.LastCheckpointAgeSeconds != 0 {
		t.Fatalf("last_checkpoint_age_seconds = %g; a future checkpoint stamp must clamp to 0", *h.LastCheckpointAgeSeconds)
	}
	m, err := cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "seqserved_last_checkpoint_age_seconds 0\n") {
		t.Fatalf("metrics age not clamped:\n%s", m)
	}
}

func TestHealthNotDurableByDefault(t *testing.T) {
	_, cl := testServer(t, Config{})
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Durable || h.WALRecords != 0 || h.LastCheckpointAgeSeconds != nil {
		t.Fatalf("in-memory health reports durability: %+v", h)
	}
}
