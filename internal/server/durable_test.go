package server

// Durable-mode server tests: a DirSnapshotter-backed server must report
// the write-ahead log in /healthz and /metrics, turn /v1/snapshot/save
// into a checkpoint, refuse /v1/snapshot/load (409), and recover every
// acknowledged write across a reboot of the same data directory.

import (
	"context"
	"strings"
	"testing"

	"seqrep"
	"seqrep/client"
)

func durableServer(t *testing.T, dir string) (*Server, *client.Client, *DirSnapshotter) {
	t.Helper()
	snap := &DirSnapshotter{Dir: dir, Config: seqrep.Config{}}
	db, err := snap.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, cl := testServer(t, Config{DB: db, Snapshotter: snap})
	return srv, cl, snap
}

func TestDurableServerLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv, cl, snap := durableServer(t, dir)

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Durable || h.WALRecords != 0 || h.LastCheckpointAgeSeconds != nil {
		t.Fatalf("fresh durable health = %+v", h)
	}

	for i := 0; i < 3; i++ {
		if _, err := cl.Ingest(ctx, feverItem(t, "rec"+string(rune('a'+i)), i)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.WALRecords != 3 || h.WALBytes == 0 || h.WALSegments == 0 {
		t.Fatalf("health after 3 ingests = %+v", h)
	}

	// Save runs as a checkpoint: log truncated, operation renamed.
	sr, err := cl.SaveSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Op != "checkpoint" || sr.Sequences != 3 || sr.WALRecords != 0 {
		t.Fatalf("SaveSnapshot = %+v", sr)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.WALRecords != 0 || h.LastCheckpointAgeSeconds == nil {
		t.Fatalf("health after checkpoint = %+v", h)
	}

	// Hot-swapping a live log is refused, loudly.
	if _, err := cl.LoadSnapshot(ctx); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("LoadSnapshot against durable server: %v, want a 409 refusal", err)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seqserved_wal_records", "seqserved_wal_bytes", "seqserved_wal_segments", "seqserved_last_checkpoint_age_seconds"} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Write after the checkpoint, then reboot the directory: both the
	// checkpointed and the logged-only records must come back.
	if _, err := cl.Ingest(ctx, feverItem(t, "late", 7)); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := snap.Open()
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 4 {
		t.Fatalf("rebooted Len = %d, want 4", db2.Len())
	}
	rec := db2.Recovery()
	if rec.Replayed != 1 || rec.Applied != 1 {
		t.Fatalf("reboot Recovery = %+v; want exactly the post-checkpoint ingest", rec)
	}
}

func TestHealthNotDurableByDefault(t *testing.T) {
	_, cl := testServer(t, Config{})
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Durable || h.WALRecords != 0 || h.LastCheckpointAgeSeconds != nil {
		t.Fatalf("in-memory health reports durability: %+v", h)
	}
}
