package server

import (
	"fmt"
	"testing"

	"seqrep"
	"seqrep/api"
)

func cacheDB(t *testing.T) *seqrep.DB {
	t.Helper()
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestResultCacheKeepsFresher pins the slow-writer race: a put at an
// older generation must not clobber a same-key entry already computed at
// a newer one.
func TestResultCacheKeepsFresher(t *testing.T) {
	db := cacheDB(t)
	c := newResultCache(4)
	fresh := &api.QueryResponse{Generation: 5}
	stale := &api.QueryResponse{Generation: 3}

	c.put("k", db, 5, fresh)
	c.put("k", db, 3, stale) // the straggler loses
	if got := c.get("k", db, 5); got != fresh {
		t.Fatalf("get at gen 5 = %+v, want the fresher entry", got)
	}
	// The other direction still updates.
	fresher := &api.QueryResponse{Generation: 7}
	c.put("k", db, 7, fresher)
	if got := c.get("k", db, 7); got != fresher {
		t.Fatal("newer-generation put did not replace")
	}
	// A different DB instance replaces regardless of generation order.
	db2 := cacheDB(t)
	other := &api.QueryResponse{Generation: 1}
	c.put("k", db2, 1, other)
	if got := c.get("k", db2, 1); got != other {
		t.Fatal("cross-instance put did not replace")
	}
}

// TestResultCacheGetSparesFresherEntry pins the read side of the
// stalled-request race: a reader holding an old generation must not
// evict a same-key entry already computed at a newer one.
func TestResultCacheGetSparesFresherEntry(t *testing.T) {
	db := cacheDB(t)
	c := newResultCache(4)
	fresh := &api.QueryResponse{Generation: 6}
	c.put("k", db, 6, fresh)
	if got := c.get("k", db, 5); got != nil {
		t.Fatal("stale reader was served a future-generation answer")
	}
	if got := c.get("k", db, 6); got != fresh {
		t.Fatal("stale reader evicted the fresher entry")
	}
	st := c.stats()
	if st.invalidations != 0 {
		t.Fatalf("stale-reader miss counted as invalidation: %+v", st)
	}
}

// TestResultCacheLRUAndInvalidation pins capacity eviction and the
// generation/instance invalidation bookkeeping.
func TestResultCacheLRUAndInvalidation(t *testing.T) {
	db := cacheDB(t)
	c := newResultCache(2)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), db, 1, &api.QueryResponse{})
	}
	if c.get("k0", db, 1) != nil {
		t.Fatal("oldest entry survived past capacity")
	}
	if c.get("k2", db, 1) == nil {
		t.Fatal("newest entry evicted")
	}
	// Generation mismatch: evicts, counts an invalidation and a miss.
	if c.get("k2", db, 2) != nil {
		t.Fatal("stale-generation entry served")
	}
	if c.get("k2", db, 2) != nil { // really gone, not just skipped
		t.Fatal("stale entry lingered after invalidation")
	}
	st := c.stats()
	if st.invalidations != 1 || st.hits != 1 || st.entries != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation, 1 hit, 1 entry", st)
	}
}
