package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"seqrep"
)

// Snapshotter persists and restores whole databases for the /v1/snapshot
// endpoints and the graceful-shutdown save. Implementations must be safe
// for concurrent use with serving traffic: Save runs against a live,
// mutating database (DB.SaveTo is a point-in-time copy), and a failed
// Save must leave any previous snapshot intact.
type Snapshotter interface {
	// Save persists a point-in-time snapshot of db.
	Save(db *seqrep.DB) error
	// Load restores the most recent snapshot into a fresh database.
	Load() (*seqrep.DB, error)
}

// FileSnapshotter stores snapshots in a single file, written atomically
// (temp file + rename in the same directory), so a crash or failure
// mid-save never corrupts the previous snapshot.
type FileSnapshotter struct {
	// Path is the snapshot file.
	Path string
	// Config supplies the code components (breaker, archive, workers ...)
	// when loading; scalar parameters come from the snapshot itself.
	Config seqrep.Config
	// WrapWriter, when non-nil, decorates the file writer on every save —
	// the instrumentation hook used by accounting and fault-injection
	// tests (in the style of store.CountingArchive). Production callers
	// leave it nil.
	WrapWriter func(io.Writer) io.Writer
}

// Save implements Snapshotter.
func (f *FileSnapshotter) Save(db *seqrep.DB) error {
	if f.Path == "" {
		return fmt.Errorf("server: snapshotter has no path")
	}
	return seqrep.SaveFile(db, f.Path, f.WrapWriter)
}

// Load implements Snapshotter.
func (f *FileSnapshotter) Load() (*seqrep.DB, error) {
	if f.Path == "" {
		return nil, fmt.Errorf("server: snapshotter has no path")
	}
	return seqrep.LoadFile(f.Path, f.Config)
}

// ErrSwapUnsupported reports a /v1/snapshot/load against a durable
// (data-dir) database: the live write-ahead log cannot be hot-swapped
// out from under in-flight writers, and the state is already durable —
// recovery happens at boot. The handler maps it to 409.
var ErrSwapUnsupported = errors.New("server: a durable data-dir database cannot hot-swap snapshots; restart to recover")

// DirSnapshotter adapts a durable data-dir database (seqrep.OpenDir) to
// the Snapshotter surface: Save runs a checkpoint — snapshot, then
// write-ahead-log truncation — instead of a bare file write, so
// /v1/snapshot/save and the graceful-shutdown save also reclaim the log.
// Load is unsupported (ErrSwapUnsupported): durable state recovers at
// boot, not by swapping a live log.
type DirSnapshotter struct {
	// Dir is the data directory (snapshot + wal/).
	Dir string
	// Config supplies the code components when opening; scalar
	// parameters come from the snapshot itself.
	Config seqrep.Config
}

// Open recovers (or creates) the durable database — cmd/seqserved's boot
// path.
func (d *DirSnapshotter) Open() (*seqrep.DB, error) {
	return seqrep.OpenDir(d.Dir, d.Config)
}

// Save implements Snapshotter by checkpointing: the snapshot covers
// every acknowledged write, then the covered log segments are truncated.
func (d *DirSnapshotter) Save(db *seqrep.DB) error {
	return db.Checkpoint()
}

// Load implements Snapshotter; it always fails with ErrSwapUnsupported.
func (d *DirSnapshotter) Load() (*seqrep.DB, error) {
	return nil, ErrSwapUnsupported
}

// Exists reports whether a snapshot file is present (used at boot to
// decide between loading and starting fresh). A stat failure other than
// plain absence is returned, not swallowed: treating "cannot tell" as
// "absent" would boot an empty database whose shutdown snapshot could
// then overwrite the real one.
func (f *FileSnapshotter) Exists() (bool, error) {
	_, err := os.Stat(f.Path)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	default:
		return false, fmt.Errorf("server: checking snapshot %s: %w", f.Path, err)
	}
}
