package server

// Unit tests of the HTTP layer: request decoding, error mapping, the
// structured batch-error response (the regression test for half-failing
// batches), record CRUD, and the canonical-form + generation behavior of
// the result cache. The end-to-end harness lives in e2e_test.go, the
// concurrency soak in soak_test.go, the snapshot fault injection in
// fault_test.go.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"seqrep"
	"seqrep/api"
	"seqrep/client"
	"seqrep/internal/seq"
)

// testServer spins a server over cfg and returns a typed client wired to
// it. cfg.DB may be nil (a fresh default database is made).
func testServer(t testing.TB, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.DB == nil {
		db, err := seqrep.New(seqrep.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.DB = db
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL)
}

// feverItem renders a deterministic two-peak fever curve as a wire item;
// varying i moves the peaks so items are distinct but same-length.
func feverItem(t testing.TB, id string, i int) api.IngestRequest {
	t.Helper()
	first := 5 + float64(i%8)
	s, err := seqrep.GenerateFever(seqrep.FeverOpts{
		Samples: 97, FirstPeak: first, SecondPeak: first + 5 + float64(i%5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return api.IngestRequest{ID: id, Times: s.Times(), Values: s.Values()}
}

// smoothWalk mirrors the equivalence_test.go workload helper: a random
// walk with small steps riding a slow oscillation, friendly to every
// breaker.
func smoothWalk(rng *rand.Rand, n int) seq.Sequence {
	vals := make([]float64, n)
	level := 10 * rng.Float64()
	for i := range vals {
		level += 0.4 * (rng.Float64() - 0.5)
		vals[i] = level + 3*float64(i%16)/16.0
	}
	return seq.New(vals)
}

// jitter adds per-sample noise of the given scale.
func jitter(rng *rand.Rand, s seq.Sequence, scale float64) seq.Sequence {
	out := s.Clone()
	for i := range out {
		out[i].V += scale * (rng.Float64() - 0.5)
	}
	return out
}

func wireItem(id string, s seq.Sequence) api.IngestRequest {
	return api.IngestRequest{ID: id, Times: s.Times(), Values: s.Values()}
}

func apiErr(t *testing.T, err error) *client.APIError {
	t.Helper()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not an *client.APIError", err, err)
	}
	return ae
}

func TestIngestQueryRecordRemove(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})

	ing, err := c.Ingest(ctx, feverItem(t, "two-0", 0))
	if err != nil {
		t.Fatal(err)
	}
	if ing.Samples != 97 || ing.Segments == 0 || ing.Symbols == "" {
		t.Fatalf("ingest response %+v lacks record detail", ing)
	}
	if ing.Generation == 0 {
		t.Fatal("ingest response generation = 0, want > 0")
	}
	if _, err := c.Ingest(ctx, feverItem(t, "two-1", 1)); err != nil {
		t.Fatal(err)
	}

	// Duplicate id maps to 409.
	_, err = c.Ingest(ctx, feverItem(t, "two-0", 2))
	if ae := apiErr(t, err); !ae.IsConflict() {
		t.Fatalf("duplicate ingest status = %d, want 409", ae.StatusCode)
	}

	res, err := c.Query(ctx, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "peaks" || len(res.IDs) != 2 {
		t.Fatalf("peaks query = %+v, want both sequences", res)
	}

	rec, err := c.Record(ctx, "two-0")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Samples != 97 || rec.Peaks != 2 {
		t.Fatalf("record = %+v, want 97 samples and 2 peaks", rec)
	}
	_, err = c.Record(ctx, "missing")
	if ae := apiErr(t, err); !ae.IsNotFound() {
		t.Fatalf("missing record status = %d, want 404", ae.StatusCode)
	}

	rm, err := c.Remove(ctx, "two-0")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Sequences != 1 {
		t.Fatalf("after remove, %d sequences remain, want 1", rm.Sequences)
	}
	_, err = c.Remove(ctx, "two-0")
	if ae := apiErr(t, err); !ae.IsNotFound() {
		t.Fatalf("double remove status = %d, want 404", ae.StatusCode)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sequences != 1 {
		t.Fatalf("health = %+v, want ok with 1 sequence", h)
	}
}

// TestBatchStructuredErrors is the regression test for half-failing
// batches: every failed item must come back individually, carrying its
// request index and id, not flattened into one string.
func TestBatchStructuredErrors(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})

	if _, err := c.Ingest(ctx, feverItem(t, "taken", 0)); err != nil {
		t.Fatal(err)
	}
	batch := []api.IngestRequest{
		feverItem(t, "ok-0", 1),
		feverItem(t, "taken", 2), // 1: duplicate
		feverItem(t, "ok-1", 3),
		{ID: "mismatch", Times: []float64{0, 1}, Values: []float64{1}}, // 3: times/values disagree
		{ID: "empty"}, // 4: no values
	}
	res, err := c.IngestBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested != 5 || res.Ingested != 2 {
		t.Fatalf("batch = %+v, want requested 5 ingested 2", res)
	}
	if len(res.Failed) != 3 {
		t.Fatalf("failed = %+v, want 3 structured entries", res.Failed)
	}
	wantIdx := []int{1, 3, 4}
	wantID := []string{"taken", "mismatch", "empty"}
	for i, f := range res.Failed {
		if f.Index != wantIdx[i] || f.ID != wantID[i] {
			t.Errorf("failed[%d] = %+v, want index %d id %q", i, f, wantIdx[i], wantID[i])
		}
		if f.Error == "" {
			t.Errorf("failed[%d] has no error text", i)
		}
	}
	// The successes landed despite their neighbors failing.
	for _, id := range []string{"ok-0", "ok-1"} {
		if _, err := c.Record(ctx, id); err != nil {
			t.Errorf("batch item %q not ingested: %v", id, err)
		}
	}

	// A fully clean batch answers 200 with no failure list.
	res, err = c.IngestBatch(ctx, []api.IngestRequest{feverItem(t, "ok-2", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 1 || len(res.Failed) != 0 {
		t.Fatalf("clean batch = %+v, want 1 ingested and no failures", res)
	}
}

func TestQueryErrorMapping(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})
	if _, err := c.Ingest(ctx, feverItem(t, "two-0", 0)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		stmt string
		code int
	}{
		{`MATCH NONSENSE 3`, 400},                      // parse error
		{`MATCH VALUE LIKE missing`, 404},              // unknown exemplar
		{`MATCH DISTANCE LIKE two-0 METRIC nope`, 422}, // unknown metric
	}
	for _, tc := range cases {
		_, err := c.Query(ctx, tc.stmt)
		if ae := apiErr(t, err); ae.StatusCode != tc.code {
			t.Errorf("%q status = %d, want %d (%s)", tc.stmt, ae.StatusCode, tc.code, ae.Message)
		}
	}
}

// TestQueryCache pins the canonical-key + generation contract at the unit
// level: spelling variants share an entry, a committed mutation
// invalidates, and disabling the cache disables Cached.
func TestQueryCache(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := c.Ingest(ctx, feverItem(t, []string{"a", "b", "c"}[i], i)); err != nil {
			t.Fatal(err)
		}
	}

	first, err := c.Query(ctx, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution reported Cached")
	}
	// A spelling variant of the same statement must hit the same entry.
	second, err := c.Query(ctx, `  match   peaks 2 `)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("canonically equal statement missed the cache")
	}
	if second.Canonical != first.Canonical {
		t.Fatalf("canonical forms differ: %q vs %q", second.Canonical, first.Canonical)
	}

	// A mutation (remove) bumps the generation: next lookup recomputes.
	if _, err := c.Remove(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	third, err := c.Query(ctx, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("query served from cache across a generation bump")
	}
	if third.Generation <= first.Generation {
		t.Fatalf("generation did not advance: %d -> %d", first.Generation, third.Generation)
	}

	// The metrics expose the cache counters.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"seqserved_cache_hits_total 1",
		"seqserved_cache_invalidations_total 1",
		"seqserved_requests_total{endpoint=\"POST /v1/query\",code=\"200\"} 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics lack %q:\n%s", want, text)
		}
	}
}

// TestCacheExactVsProgressive is the regression test for cache
// separation between exact and progressive spellings of the same match:
// a cached exact answer must never be served for a WITHIN ERROR / APPROX
// statement and vice versa — the canonical forms differ, so each
// spelling owns its own cache entry, while re-runs of the same spelling
// still hit.
func TestCacheExactVsProgressive(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})
	for i, id := range []string{"a", "b", "c"} {
		if _, err := c.Ingest(ctx, feverItem(t, id, i)); err != nil {
			t.Fatal(err)
		}
	}

	const exact = `MATCH DISTANCE LIKE a METRIC l2 EPS 5`
	variants := []string{
		exact + ` WITHIN ERROR 0.25`,
		exact + ` APPROX candidate`,
		exact + ` WITHIN ERROR 0.25 APPROX candidate`,
	}

	warm, err := c.Query(ctx, exact)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cached {
		t.Fatal("first exact execution reported Cached")
	}
	for _, v := range variants {
		res, err := c.Query(ctx, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Cached {
			t.Errorf("%s: served the cached exact answer", v)
		}
		if res.Canonical == warm.Canonical {
			t.Errorf("%s: canonical form collapsed to the exact spelling %q", v, res.Canonical)
		}
		// The reverse direction: the progressive entry just stored must
		// not leak back into the exact spelling…
		back, err := c.Query(ctx, exact)
		if err != nil {
			t.Fatal(err)
		}
		if back.Canonical != warm.Canonical {
			t.Errorf("exact statement re-canonicalized to %q after %s", back.Canonical, v)
		}
		// …and each spelling's own re-run does hit its own entry.
		again, err := c.Query(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Errorf("%s: identical re-run missed its own cache entry", v)
		}
		if again.Canonical != res.Canonical {
			t.Errorf("%s: unstable canonical form %q vs %q", v, again.Canonical, res.Canonical)
		}
	}
	// The exact entry survived all of the progressive traffic.
	final, err := c.Query(ctx, exact)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Cached {
		t.Fatal("exact entry evicted or clobbered by progressive statements")
	}
	// Progressive and exact spellings of the same match agree on the
	// accepted IDs (WITHIN ERROR only widens how early a record may be
	// accepted, never which records match at full refinement).
	if fmt.Sprintf("%v", final.IDs) != fmt.Sprintf("%v", warm.IDs) {
		t.Fatalf("exact IDs drifted: %v vs %v", final.IDs, warm.IDs)
	}
}

func TestCacheDisabled(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{CacheSize: -1})
	if _, err := c.Ingest(ctx, feverItem(t, "a", 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := c.Query(ctx, `MATCH PEAKS 2`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("disabled cache served a hit")
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "seqserved_cache_hits_total") {
		t.Error("disabled cache still exports counters")
	}
}

// TestBodyLimit pins the request-body cap: an oversized POST answers 413
// and the server keeps serving.
func TestBodyLimit(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{MaxBodyBytes: 256})
	big := feverItem(t, "big", 0) // 97 samples × 2 float fields ≫ 256 bytes
	_, err := c.Ingest(ctx, big)
	if ae := apiErr(t, err); ae.StatusCode != 413 {
		t.Fatalf("oversized ingest status = %d, want 413", ae.StatusCode)
	}
	// Small requests still work afterwards.
	small := api.IngestRequest{ID: "s", Values: []float64{1, 2, 3, 2, 1}}
	if _, err := c.Ingest(ctx, small); err != nil {
		t.Fatalf("small ingest after 413: %v", err)
	}
}

func TestSnapshotUnconfigured(t *testing.T) {
	ctx := context.Background()
	_, c := testServer(t, Config{})
	_, err := c.SaveSnapshot(ctx)
	if ae := apiErr(t, err); !ae.IsConflict() {
		t.Fatalf("snapshot save without a store: status %d, want 409", ae.StatusCode)
	}
	_, err = c.LoadSnapshot(ctx)
	if ae := apiErr(t, err); !ae.IsConflict() {
		t.Fatalf("snapshot load without a store: status %d, want 409", ae.StatusCode)
	}
}
