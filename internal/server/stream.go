package server

import (
	"encoding/json"
	"math"
	"net/http"
	"time"

	"seqrep"
	"seqrep/api"
)

// streamFlushInterval is how often the NDJSON stream is flushed to the
// client while item frames are being produced; the header and trailer
// flush unconditionally, so short streams arrive promptly and long ones
// amortize the flush cost.
const streamFlushInterval = 100 * time.Millisecond

// streamWriter serializes api.StreamFrame lines onto an NDJSON response
// with periodic flushes. Frames may arrive from the engine's worker
// goroutines (serialized by the engine) and then from the handler
// goroutine — never concurrently. The first write error sticks: further
// frames report failure, which propagates as a false yield into the
// engine and cancels the query.
type streamWriter struct {
	enc       *json.Encoder
	fl        http.Flusher
	lastFlush time.Time
	err       error
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	fl, _ := w.(http.Flusher)
	return &streamWriter{enc: json.NewEncoder(w), fl: fl}
}

// frame writes one NDJSON line, flushing if the flush interval elapsed.
// It reports whether the stream is still writable.
func (sw *streamWriter) frame(f *api.StreamFrame) bool {
	if sw.err != nil {
		return false
	}
	if err := sw.enc.Encode(f); err != nil {
		sw.err = err
		return false
	}
	if sw.fl != nil && time.Since(sw.lastFlush) >= streamFlushInterval {
		sw.flush()
	}
	return true
}

func (sw *streamWriter) flush() {
	if sw.fl != nil {
		sw.fl.Flush()
		sw.lastFlush = time.Now()
	}
}

// toRefineFrame converts one engine refinement frame to its wire form.
// An unbounded upper edge (+Inf before any sample- or feature-derived
// estimate exists) becomes a nil Hi — JSON has no infinity.
func toRefineFrame(pm seqrep.ProgressiveMatch) *api.RefineFrame {
	rf := &api.RefineFrame{
		ID:    pm.ID,
		Tier:  pm.Tier.String(),
		Lo:    pm.Band.Lo,
		Final: pm.Final,
	}
	if !math.IsInf(pm.Band.Hi, 1) {
		hi := pm.Band.Hi
		rf.Hi = &hi
	}
	return rf
}

// handleQueryStream is POST /v1/query/stream: the statement's answer as
// an NDJSON stream of api.StreamFrame lines — header (canonical form),
// items as the engine produces them, trailer (kind, stats, generation).
// Similarity matches stream incrementally, so a LIMIT/TOP-bounded or
// cancelled statement never materializes the full answer; a client that
// disconnects mid-stream cancels the query through the request context
// and the failed write, freeing the handler promptly. Streamed answers
// bypass the result cache in both directions: they are not served from
// it and not stored into it.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	q, err := seqrep.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	canonical := q.String()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	db := s.DB()
	gen := db.Generation()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w)
	sw.frame(&api.StreamFrame{Canonical: canonical})
	sw.flush()

	var res *seqrep.QueryResult
	if seqrep.IsProgressiveQuery(q) {
		// Progressive statements stream every refinement frame, tagged
		// with its quality tier; final accepts carry the Match alongside
		// the verdict band in the same frame.
		res, err = seqrep.StreamQueryProgressive(ctx, db, seqrep.LimitQuery(q, s.queryLimit), func(pm seqrep.ProgressiveMatch) bool {
			f := &api.StreamFrame{Refine: toRefineFrame(pm)}
			if pm.Final && pm.Match != nil {
				f.Match = &api.Match{ID: pm.Match.ID, Exact: pm.Match.Exact, Deviations: pm.Match.Deviations}
			}
			return sw.frame(f)
		})
	} else {
		yield := func(m seqrep.Match) bool {
			return sw.frame(&api.StreamFrame{
				Match: &api.Match{ID: m.ID, Exact: m.Exact, Deviations: m.Deviations},
			})
		}
		res, err = seqrep.StreamQuery(ctx, db, seqrep.LimitQuery(q, s.queryLimit), yield)
	}
	if err != nil {
		sw.frame(&api.StreamFrame{Error: err.Error()})
		sw.flush()
		return
	}
	// Kinds without a streamed item form arrive materialized on the
	// result; frame them now. For FIND and INTERVAL the ids mirror the
	// richer items, so only the richer form is framed.
	switch {
	case len(res.Hits) > 0:
		for _, h := range res.Hits {
			sw.frame(&api.StreamFrame{Hit: &api.PatternHit{
				ID: h.ID, SegLo: h.SegLo, SegHi: h.SegHi, TimeLo: h.TimeLo, TimeHi: h.TimeHi,
			}})
		}
	case len(res.Intervals) > 0:
		for _, iv := range res.Intervals {
			sw.frame(&api.StreamFrame{Interval: &api.IntervalMatch{
				ID: iv.ID, Positions: iv.Positions, Intervals: iv.Intervals,
			}})
		}
	default:
		for _, id := range res.IDs {
			sw.frame(&api.StreamFrame{ID: id})
		}
	}
	trailer := &api.StreamFrame{Done: true, Kind: res.Kind, Generation: gen, Explain: res.Explain}
	if res.Stats != nil {
		trailer.Stats = toAPIStats(res.Stats)
	}
	sw.frame(trailer)
	sw.flush()
}
