package server

// Tests for /v1/query/stream: NDJSON framing (header → items → trailer),
// the typed client's streaming iterator, error frames, the server-side
// result cap and query timeout, and the disconnect contract — a client
// that drops mid-stream frees the handler promptly (observed through the
// request metrics, which only record a request when its handler
// returns).

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"seqrep"
	"seqrep/api"
	"seqrep/client"
)

// streamServer is testServer, additionally exposing the raw base URL for
// assertions the typed client hides (headers, wire bytes).
func streamServer(t testing.TB, cfg Config) (*httptest.Server, *client.Client) {
	t.Helper()
	if cfg.DB == nil {
		db, err := seqrep.New(seqrep.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.DB = db
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL)
}

func ingestFevers(t testing.TB, c *client.Client, n int) {
	t.Helper()
	items := make([]api.IngestRequest, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, feverItem(t, fmt.Sprintf("f-%03d", i), i))
	}
	res, err := c.IngestBatch(context.Background(), items)
	if err != nil || len(res.Failed) > 0 {
		t.Fatalf("batch ingest: %v, failed %+v", err, res)
	}
}

func TestQueryStreamEndToEnd(t *testing.T) {
	ctx := context.Background()
	ts, c := streamServer(t, Config{})
	ingestFevers(t, c, 12)

	// Raw wire check: NDJSON content type, header first, trailer last.
	res, err := http.Post(ts.URL+"/v1/query/stream", "application/json",
		strings.NewReader(`{"query":"match distance like f-000 metric l2 top 3 by distance"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	blob, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 5 { // header + 3 matches + trailer
		t.Fatalf("got %d NDJSON lines: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"canonical":"MATCH DISTANCE LIKE f-000 METRIC l2 TOP 3 BY DISTANCE"`) {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"done":true`) {
		t.Errorf("trailer = %s", lines[len(lines)-1])
	}

	// Typed client: nearest-first matches, trailer carries kind + stats.
	qs, err := c.StreamQuery(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 TOP 3 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	if qs.Canonical() != `MATCH DISTANCE LIKE f-000 METRIC l2 TOP 3 BY DISTANCE` {
		t.Errorf("canonical = %q", qs.Canonical())
	}
	var ids []string
	var lastDev float64
	for f, err := range qs.Frames() {
		if err != nil {
			t.Fatal(err)
		}
		if f.Match == nil {
			t.Fatalf("unexpected frame %+v", f)
		}
		dev := f.Match.Deviations["l2"]
		if dev < lastDev {
			t.Errorf("matches not nearest-first: %g after %g", dev, lastDev)
		}
		lastDev = dev
		ids = append(ids, f.Match.ID)
	}
	if len(ids) != 3 || ids[0] != "f-000" {
		t.Errorf("top-3 stream = %v", ids)
	}
	tr := qs.Trailer()
	if tr == nil || tr.Kind != "distance" || tr.Stats == nil || tr.Stats.Plan == "" {
		t.Fatalf("trailer = %+v", tr)
	}

	// The streamed answer agrees with the non-streamed endpoint's.
	direct, err := c.Query(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 TOP 3 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range direct.Matches {
		if ids[i] != m.ID {
			t.Errorf("stream order %v != direct %v", ids, direct.IDs)
			break
		}
	}

	// A pattern statement frames ids; EXPLAIN survives the trailer.
	qs2, err := c.StreamQuery(ctx, `EXPLAIN MATCH PEAKS 2 LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	defer qs2.Close()
	n := 0
	for f, err := range qs2.Frames() {
		if err != nil {
			t.Fatal(err)
		}
		if f.Match == nil {
			t.Fatalf("peaks stream frame = %+v", f)
		}
		n++
	}
	if n != 4 {
		t.Errorf("LIMIT 4 streamed %d matches", n)
	}
	// The trailer's stats must count the frames actually streamed, not
	// the stripped materialized result.
	if tr := qs2.Trailer(); tr == nil || !tr.Explain || tr.Stats == nil || tr.Stats.Matches != 4 {
		t.Fatalf("explain trailer = %+v", qs2.Trailer())
	}

	// Statement errors before any result become an error frame.
	qs3, err := c.StreamQuery(ctx, `MATCH VALUE LIKE no-such-id`)
	if err != nil {
		t.Fatal(err)
	}
	defer qs3.Close()
	if _, err := qs3.Next(); err == nil || !strings.Contains(err.Error(), "no-such-id") {
		t.Fatalf("missing-exemplar stream error = %v", err)
	}

	// Unparseable statements still fail fast with a plain 400.
	if _, err := c.StreamQuery(ctx, `NONSENSE`); err == nil {
		t.Fatal("unparseable statement accepted")
	}
}

// TestQueryStreamProgressive pins the wire contract of the progressive
// cascade: WITHIN ERROR / APPROX statements stream Refine frames tagged
// with their quality tier, every record refines monotonically (tiers
// never regress, bands only tighten) and closes with exactly one final
// frame — the accepted finals carrying the Match in the same frame — and
// with WITHIN ERROR 0 the accepted set is bit-equal to the exact
// spelling's answer.
func TestQueryStreamProgressive(t *testing.T) {
	ctx := context.Background()
	ts, c := streamServer(t, Config{})
	ingestFevers(t, c, 12)

	// Raw wire check: refine frames carry tier + band, hi present while
	// bounded, match only on final accepts.
	res, err := http.Post(ts.URL+"/v1/query/stream", "application/json",
		strings.NewReader(`{"query":"MATCH DISTANCE LIKE f-000 METRIC l2 EPS 2 WITHIN ERROR 0"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	blob, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if !strings.Contains(lines[0], `"canonical":"MATCH DISTANCE LIKE f-000 METRIC l2 EPS 2 WITHIN ERROR 0"`) {
		t.Errorf("header = %s", lines[0])
	}
	sawRefine := false
	for _, line := range lines[1 : len(lines)-1] {
		if !strings.Contains(line, `"refine"`) {
			t.Fatalf("item frame without refine: %s", line)
		}
		sawRefine = true
		if strings.Contains(line, `"match"`) && !strings.Contains(line, `"final":true`) {
			t.Errorf("non-final frame carries a match: %s", line)
		}
	}
	if !sawRefine {
		t.Fatal("no refine frames streamed")
	}

	// Typed client: per-record monotone refinement, one final per id.
	qs, err := c.StreamQuery(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 EPS 2 WITHIN ERROR 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	tierRank := map[string]int{"sketch": 1, "candidate": 2, "exact": 3}
	type state struct {
		tier  int
		width float64
		final bool
	}
	seen := map[string]*state{}
	var accepted []string
	for f, err := range qs.Frames() {
		if err != nil {
			t.Fatal(err)
		}
		rf := f.Refine
		if rf == nil {
			t.Fatalf("progressive stream frame lacks refine: %+v", f)
		}
		rank, ok := tierRank[rf.Tier]
		if !ok {
			t.Fatalf("unknown tier %q", rf.Tier)
		}
		st := seen[rf.ID]
		if st == nil {
			st = &state{width: math.Inf(1)}
			seen[rf.ID] = st
		}
		if st.final {
			t.Errorf("%s: frame after final", rf.ID)
		}
		if rank < st.tier {
			t.Errorf("%s: tier regressed to %s", rf.ID, rf.Tier)
		}
		if w := rf.Width(); w > st.width {
			t.Errorf("%s: band widened %g -> %g", rf.ID, st.width, w)
		} else {
			st.width = w
		}
		st.tier = rank
		if rf.Final {
			st.final = true
			if f.Match != nil {
				if f.Match.ID != rf.ID {
					t.Errorf("final frame match id %q != refine id %q", f.Match.ID, rf.ID)
				}
				accepted = append(accepted, rf.ID)
			}
		} else if f.Match != nil {
			t.Errorf("%s: match on a non-final frame", rf.ID)
		}
	}
	for id, st := range seen {
		if !st.final {
			t.Errorf("%s: stream ended without a final frame", id)
		}
	}
	tr := qs.Trailer()
	if tr == nil || tr.Stats == nil || tr.Stats.Plan != "progressive" {
		t.Fatalf("trailer = %+v", tr)
	}

	// WITHIN ERROR 0 forces full refinement: the accepted set matches
	// the exact spelling's answer exactly.
	direct, err := c.Query(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 EPS 2`)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(accepted)
	want := append([]string(nil), direct.IDs...)
	sort.Strings(want)
	if fmt.Sprintf("%v", accepted) != fmt.Sprintf("%v", want) {
		t.Errorf("progressive accepts %v != exact matches %v", accepted, want)
	}

	// A sketch-tier cap still finalizes every record (earlier, wider).
	qs2, err := c.StreamQuery(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 EPS 2 APPROX sketch`)
	if err != nil {
		t.Fatal(err)
	}
	defer qs2.Close()
	finals := 0
	for f, err := range qs2.Frames() {
		if err != nil {
			t.Fatal(err)
		}
		if f.Refine == nil {
			t.Fatalf("frame lacks refine: %+v", f)
		}
		if f.Refine.Tier != "sketch" {
			t.Errorf("APPROX sketch streamed tier %q", f.Refine.Tier)
		}
		if f.Refine.Final {
			finals++
		}
	}
	if finals == 0 {
		t.Error("APPROX sketch stream produced no final frames")
	}
}

// TestRefineFrameHiEncoding pins the +Inf rule: an unbounded band edge
// is omitted from the wire (JSON cannot carry Inf), and Width() reads it
// back as +Inf.
func TestRefineFrameHiEncoding(t *testing.T) {
	open := toRefineFrame(seqrep.ProgressiveMatch{
		ID: "r", Tier: seqrep.TierSketch,
		Band: seqrep.Band{Lo: 1, Hi: math.Inf(1)},
	})
	if open.Hi != nil {
		t.Fatalf("unbounded Hi encoded as %v", *open.Hi)
	}
	if !math.IsInf(open.Width(), 1) {
		t.Errorf("open band width = %v, want +Inf", open.Width())
	}
	closed := toRefineFrame(seqrep.ProgressiveMatch{
		ID: "r", Tier: seqrep.TierExact,
		Band: seqrep.Band{Lo: 1, Hi: 2.5},
	})
	if closed.Hi == nil || *closed.Hi != 2.5 {
		t.Fatalf("bounded Hi = %v, want 2.5", closed.Hi)
	}
	if w := closed.Width(); math.Abs(w-1.5) > 1e-12 {
		t.Errorf("width = %v, want 1.5", w)
	}
}

// TestQueryStreamDisconnect pins the handler-release contract: a client
// that walks away mid-stream frees the handler promptly — the query's
// context aborts the scan instead of burning through the remaining
// records. Handler completion is observed through the metrics
// middleware, which records a request only when its handler returns.
func TestQueryStreamDisconnect(t *testing.T) {
	arch := seqrep.NewMemArchive()
	db, err := seqrep.New(seqrep.Config{Archive: arch, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var items []seqrep.BatchItem
	for i := 0; i < 400; i++ {
		items = append(items, seqrep.BatchItem{ID: fmt.Sprintf("s-%03d", i), Seq: smoothWalk(rng, 32)})
	}
	if n, err := db.IngestBatch(items); err != nil || n != len(items) {
		t.Fatalf("ingest: %d, %v", n, err)
	}
	arch.ReadLatency = 2 * time.Millisecond // slow verification from here on

	ts, c := streamServer(t, Config{DB: db})

	ctx, cancel := context.WithCancel(context.Background())
	qs, err := c.StreamQuery(ctx, `MATCH DISTANCE LIKE s-000 METRIC l2 EPS 999999`)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame so the query is demonstrably in flight, then vanish.
	if _, err := qs.Next(); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	cancel()
	qs.Close()

	// The full scan would take ~400 × 2ms / 2 workers ≈ 400ms of archive
	// reads alone; a released handler shows up in the metrics much
	// sooner. Poll for the stream request being recorded.
	deadline := time.Now().Add(3 * time.Second)
	for {
		metrics, err := client.New(ts.URL).Metrics(context.Background())
		if err == nil && strings.Contains(metrics, `endpoint="POST /v1/query/stream"`) {
			return // handler returned and was observed
		}
		if time.Now().After(deadline) {
			t.Fatal("stream handler not released within 3s of client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQueryServerBounds covers the seqserved -query-limit / -query-timeout
// plumbing: the server-wide cap tightens unbounded statements (and the
// capped answer still caches soundly under the uncapped canonical form),
// and a statement outrunning the timeout answers 504.
func TestQueryServerBounds(t *testing.T) {
	ctx := context.Background()
	_, c := streamServer(t, Config{QueryLimit: 2})
	ingestFevers(t, c, 8)

	res, err := c.Query(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 EPS 999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("server cap returned %d matches", len(res.Matches))
	}
	if res.Stats == nil || !res.Stats.Truncated {
		t.Errorf("capped answer stats = %+v, want truncated", res.Stats)
	}
	again, err := c.Query(ctx, `MATCH DISTANCE LIKE f-000 METRIC l2 EPS 999`)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || len(again.Matches) != 2 {
		t.Errorf("capped answer did not cache: cached=%v matches=%d", again.Cached, len(again.Matches))
	}

	// Timeout: a slow archive makes the scan outrun a 10ms budget.
	arch := seqrep.NewMemArchive()
	db, err := seqrep.New(seqrep.Config{Archive: arch, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var items []seqrep.BatchItem
	for i := 0; i < 200; i++ {
		items = append(items, seqrep.BatchItem{ID: fmt.Sprintf("t-%03d", i), Seq: smoothWalk(rng, 32)})
	}
	if n, err := db.IngestBatch(items); err != nil || n != len(items) {
		t.Fatalf("ingest: %d, %v", n, err)
	}
	arch.ReadLatency = 2 * time.Millisecond
	_, slow := streamServer(t, Config{DB: db, QueryTimeout: 10 * time.Millisecond, CacheSize: -1})
	_, err = slow.Query(ctx, `MATCH DISTANCE LIKE t-000 METRIC l2 EPS 999999`)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query returned %v, want 504", err)
	}
}
