package server

// Admission control (docs/RELIABILITY.md): the server bounds the
// weighted work it runs concurrently instead of letting overload turn
// into unbounded goroutines, memory, and collapse. Each route carries a
// weight — a streaming query costs more than a single-record ingest,
// and pins its slots for the stream's whole lifetime — and a request
// admits only while the weighted sum fits the limit. Beyond the limit a
// bounded FIFO queue absorbs bursts; beyond the queue the server sheds
// load with 429 and a Retry-After computed from how fast slots have
// been turning over, so well-behaved clients back off instead of
// hammering a saturated node.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"seqrep/api"
)

// Route weights: the relative cost a request of each shape admits at.
// Calibrated coarsely — what matters is the ratio (a batch or a stream
// must not be able to crowd out everything else at the same price as a
// point read), not the absolute number.
const (
	weightQuery    = 4 // full similarity scan over the database
	weightStream   = 4 // same cost, held for the stream's lifetime
	weightIngest   = 1 // one record through the pipeline
	weightBatch    = 8 // many records through the worker pool
	weightRecord   = 1 // point read / point delete
	weightSnapshot = 2 // checkpoint or load: I/O heavy but single-flight
)

// errOverloaded is the admission controller's load-shed verdict,
// answered as 429.
var errOverloaded = errors.New("server overloaded: admission queue full")

// admitWaiter is one queued request. ready is buffered so a grant never
// blocks on a waiter that is busy timing out.
type admitWaiter struct {
	weight int
	route  string
	ready  chan struct{}
}

// admission is the weighted-concurrency limiter. Nil means admission
// control is disabled (Config.AdmissionLimit < 0).
type admission struct {
	limit    int
	queueCap int

	mu       sync.Mutex
	inflight int            // admitted weight
	queued   int            // waiting weight
	waiters  []*admitWaiter // FIFO
	byRoute  map[string]int // admitted weight per route
	// holdEWMA tracks how long admitted requests hold their weight
	// (seconds, exponentially weighted): the basis of the Retry-After
	// estimate. Zero until the first release.
	holdEWMA float64

	rejected atomic.Uint64
}

func newAdmission(limit, queueCap int) *admission {
	return &admission{
		limit:    limit,
		queueCap: queueCap,
		byRoute:  make(map[string]int),
	}
}

// acquire admits weight units of work for route, blocking in FIFO order
// while the server is saturated. It returns a release closure on
// success; errOverloaded (with a Retry-After estimate in seconds) when
// the wait queue is full; or ctx.Err() when the caller gave up while
// queued.
func (a *admission) acquire(ctx context.Context, route string, weight int) (release func(), retryAfter int, err error) {
	if weight > a.limit {
		weight = a.limit // a single request heavier than the whole budget still admits — alone
	}
	a.mu.Lock()
	if len(a.waiters) == 0 && a.inflight+weight <= a.limit {
		a.admitLocked(route, weight)
		a.mu.Unlock()
		return a.releaseFunc(route, weight), 0, nil
	}
	if a.queued+weight > a.queueCap {
		after := a.retryAfterLocked(weight)
		a.mu.Unlock()
		a.rejected.Add(1)
		return nil, after, errOverloaded
	}
	w := &admitWaiter{weight: weight, route: route, ready: make(chan struct{}, 1)}
	a.queued += weight
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.releaseFunc(route, weight), 0, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.queued -= weight
				a.mu.Unlock()
				return nil, 0, ctx.Err()
			}
		}
		// Granted in the race window: the weight is ours, hand it back.
		a.mu.Unlock()
		a.releaseFunc(route, weight)()
		return nil, 0, ctx.Err()
	}
}

// admitLocked books weight against the limit.
func (a *admission) admitLocked(route string, weight int) {
	a.inflight += weight
	a.byRoute[route] += weight
}

// releaseFunc returns the closure that returns weight to the pool and
// wakes whatever queued work now fits. It also feeds the hold-time EWMA
// the Retry-After estimate leans on.
func (a *admission) releaseFunc(route string, weight int) func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			held := time.Since(start).Seconds()
			a.mu.Lock()
			a.inflight -= weight
			if a.byRoute[route] -= weight; a.byRoute[route] <= 0 {
				delete(a.byRoute, route)
			}
			const alpha = 0.2
			if a.holdEWMA == 0 {
				a.holdEWMA = held
			} else {
				a.holdEWMA += alpha * (held - a.holdEWMA)
			}
			for len(a.waiters) > 0 {
				head := a.waiters[0]
				if a.inflight+head.weight > a.limit {
					break // FIFO: nothing jumps the head
				}
				a.waiters = a.waiters[1:]
				a.queued -= head.weight
				a.admitLocked(head.route, head.weight)
				head.ready <- struct{}{}
			}
			a.mu.Unlock()
		})
	}
}

// retryAfterLocked estimates, in whole seconds, when a rejected request
// of this weight would plausibly admit: the outstanding weight ahead of
// it (inflight plus queued) drains at roughly limit/holdEWMA weight per
// second. Clamped to [1, 60] — a floor so clients cannot spin on
// "Retry-After: 0", a ceiling so a long-stream outlier in the EWMA
// cannot park clients for minutes.
func (a *admission) retryAfterLocked(weight int) int {
	hold := a.holdEWMA
	if hold <= 0 {
		hold = 0.05 // no completions observed yet: assume fast turnover
	}
	ahead := float64(a.inflight + a.queued + weight)
	est := hold * ahead / float64(a.limit)
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// stats snapshots the controller for /healthz and /metrics.
func (a *admission) stats() api.AdmissionStats {
	a.mu.Lock()
	st := api.AdmissionStats{
		Limit:      a.limit,
		Inflight:   a.inflight,
		Queued:     a.queued,
		QueueLimit: a.queueCap,
		Saturation: float64(a.inflight) / float64(a.limit),
		Rejected:   a.rejected.Load(),
	}
	if len(a.byRoute) > 0 {
		st.PerRoute = make(map[string]float64, len(a.byRoute))
		for route, w := range a.byRoute {
			st.PerRoute[route] = float64(w) / float64(a.limit)
		}
	}
	a.mu.Unlock()
	return st
}
