package multires

import (
	"math"
	"testing"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestBuildLevels(t *testing.T) {
	s := synth.Sine(64, 5, 16, 0)
	p, err := Build(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() != 4 {
		t.Fatalf("Levels = %d, want 4", p.Levels())
	}
	wantLens := []int{64, 32, 16, 8}
	for k, want := range wantLens {
		lvl, err := p.Level(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(lvl) != want {
			t.Errorf("level %d has %d samples, want %d", k, len(lvl), want)
		}
		if err := lvl.Validate(); err != nil {
			t.Errorf("level %d invalid: %v", k, err)
		}
	}
}

func TestBuildStopsAtMinimumSize(t *testing.T) {
	s := synth.Sine(16, 1, 8, 0)
	p, err := Build(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 16 -> 8 -> 4; halving 4 would go below 4 samples.
	if p.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", p.Levels())
	}
}

func TestBuildOddLength(t *testing.T) {
	s := synth.Sine(65, 5, 16, 0)
	p, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := p.Level(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lvl) != 33 { // 32 pairs + carried tail
		t.Errorf("odd halving gave %d samples", len(lvl))
	}
	if lvl[32] != s[64] {
		t.Errorf("tail sample not carried: %v vs %v", lvl[32], s[64])
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 2); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Build(synth.Sine(10, 1, 5, 0), 0); err == nil {
		t.Error("maxLevels=0 accepted")
	}
	bad := seq.Sequence{{T: 1, V: 0}, {T: 0, V: 0}}
	if _, err := Build(bad, 1); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestLevelOutOfRange(t *testing.T) {
	p, err := Build(synth.Sine(32, 1, 8, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Level(-1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := p.Level(99); err == nil {
		t.Error("deep level accepted")
	}
}

func TestAveragingIsHaarApproximation(t *testing.T) {
	s := seq.New([]float64{1, 3, 5, 7, 2, 4, 0, 8})
	p, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	lvl, _ := p.Level(1)
	want := []float64{2, 6, 3, 4}
	for i := range want {
		if lvl[i].V != want[i] {
			t.Errorf("level1[%d] = %g, want %g", i, lvl[i].V, want[i])
		}
	}
	// Times are pair midpoints.
	if lvl[0].T != 0.5 || lvl[3].T != 6.5 {
		t.Errorf("times: %g, %g", lvl[0].T, lvl[3].T)
	}
}

// Peaks survive coarsening while their flanks still span multiple coarse
// samples: the paper's feature-preserving compression goal (§7) applied to
// the ECG workload. The R flanks are ~8 samples wide, so levels 0-2
// (window ≤ 4 samples) must preserve all four peaks exactly.
func TestPeaksPreservedAcrossLevels(t *testing.T) {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(ecg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < p.Levels(); k++ {
		peaks, err := p.PeaksAtLevel(k, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(peaks) != len(rPeaks) {
			t.Errorf("level %d: %d peaks, want %d", k, len(peaks), len(rPeaks))
			continue
		}
		for i, pk := range peaks {
			tolerance := 4.0 * float64(int(1)<<k)
			if math.Abs(pk.Time-rPeaks[i]) > tolerance {
				t.Errorf("level %d peak %d at %g, ground truth %g", k, i, pk.Time, rPeaks[i])
			}
		}
	}
}

// Beyond the resolution boundary the features genuinely disappear: at
// level 3 the R flank is narrower than one coarse sample and the standard
// parameters no longer find all peaks. This documents the boundary rather
// than papering over it.
func TestPeakResolutionBoundary(t *testing.T) {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(ecg, 3)
	if err != nil {
		t.Fatal(err)
	}
	peaks, err := p.PeaksAtLevel(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) == len(rPeaks) {
		t.Skip("level 3 unexpectedly preserved all peaks; boundary moved")
	}
}

func TestFindPeaksCoarseToFine(t *testing.T) {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(ecg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 128 coarse samples → level 2, where the R flanks still resolve.
	res, err := p.FindPeaks(10, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 2 {
		t.Errorf("coarse search ran at level %d, want 2", res.Level)
	}
	if len(res.Peaks) != len(rPeaks) {
		t.Fatalf("found %d peaks, want %d", len(res.Peaks), len(rPeaks))
	}
	for i, pk := range res.Peaks {
		// Refinement snaps to the exact sample of the R maximum.
		if math.Abs(pk.Time-rPeaks[i]) > 1.5 {
			t.Errorf("refined peak %d at %g, ground truth %g", i, pk.Time, rPeaks[i])
		}
	}
	examined := res.CoarseSamples + res.RefineSamples
	if examined >= len(ecg) {
		t.Errorf("coarse-to-fine examined %d samples of %d — no saving", examined, len(ecg))
	}
}

func TestFindPeaksDefaultsAndFallback(t *testing.T) {
	// A short sequence cannot satisfy a huge coarse minimum: detection
	// falls back to level 0.
	fever, err := synth.Fever(synth.FeverOpts{Samples: 49})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(fever, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.FindPeaks(0.5, 0.25, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 0 {
		t.Errorf("expected fallback to level 0, got %d", res.Level)
	}
	if len(res.Peaks) != 2 {
		t.Errorf("peaks = %d", len(res.Peaks))
	}
	// minCoarseSamples <= 0 defaults without error.
	if _, err := p.FindPeaks(0.5, 0.25, 0); err != nil {
		t.Error(err)
	}
}

func TestNearestIndex(t *testing.T) {
	s := seq.New([]float64{0, 0, 0, 0, 0}) // times 0..4
	cases := map[float64]int{-1: 0, 0: 0, 0.4: 0, 0.6: 1, 2: 2, 3.5: 3, 4: 4, 9: 4}
	for tt, want := range cases {
		if got := nearestIndex(s, tt); got != want {
			t.Errorf("nearestIndex(%g) = %d, want %d", tt, got, want)
		}
	}
}
