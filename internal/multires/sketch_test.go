package multires

// Sketch unit and property tests: construction over known inputs, the
// band-soundness guarantee (lo ≤ d ≤ hi for the exactly computed metric
// distance) across every banded metric on the paper's generator
// workloads, and the degenerate corners — constant, NaN, sub-3-sample
// inputs — progressive queries must survive.

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestNumBlocks(t *testing.T) {
	cases := []struct{ n, block, want int }{
		{0, 16, 0}, {10, 0, 0}, {10, -1, 0},
		{1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {97, 16, 7}, {96, 16, 6},
	}
	for _, c := range cases {
		if got := NumBlocks(c.n, c.block); got != c.want {
			t.Errorf("NumBlocks(%d, %d) = %d, want %d", c.n, c.block, got, c.want)
		}
	}
}

func TestBuildSketchKnownInput(t *testing.T) {
	// Two full blocks and a short tail: means and residual norms are
	// computable by hand.
	vals := []float64{1, 3, 5, 7, 10}
	s := BuildSketch(vals, 2)
	if s == nil {
		t.Fatal("nil sketch")
	}
	if s.N != 5 || s.Block != 2 {
		t.Fatalf("layout N=%d Block=%d", s.N, s.Block)
	}
	wantMeans := []float64{2, 6, 10}
	if len(s.Means) != len(wantMeans) {
		t.Fatalf("means %v, want %v", s.Means, wantMeans)
	}
	for i, m := range wantMeans {
		if math.Abs(s.Means[i]-m) > 1e-12 {
			t.Errorf("mean[%d] = %v, want %v", i, s.Means[i], m)
		}
	}
	// Residuals: {−1, 1, −1, 1, 0} → R1 = 4, R2 = 2, Rinf = 1.
	if math.Abs(s.R1-4) > 1e-12 || math.Abs(s.R2-2) > 1e-12 || math.Abs(s.Rinf-1) > 1e-12 {
		t.Errorf("residual norms R1=%v R2=%v Rinf=%v, want 4, 2, 1", s.R1, s.R2, s.Rinf)
	}
	// The z-half must be built from the exact same transform zl2
	// verification uses.
	z := dist.ZNormalizeValues(vals)
	zs := BuildSketch(z, 2)
	for i := range zs.Means {
		if s.ZMeans[i] != zs.Means[i] {
			t.Errorf("z-mean[%d] = %v, want %v (bit-level)", i, s.ZMeans[i], zs.Means[i])
		}
	}
	if s.ZR2 != zs.R2 {
		t.Errorf("ZR2 = %v, want %v (bit-level)", s.ZR2, zs.R2)
	}
}

func TestBuildSketchNilCases(t *testing.T) {
	if BuildSketch(nil, 16) != nil {
		t.Error("empty values produced a sketch")
	}
	if BuildSketch([]float64{1, 2}, 0) != nil || BuildSketch([]float64{1, 2}, -3) != nil {
		t.Error("non-positive block produced a sketch")
	}
}

func TestCompatible(t *testing.T) {
	a := BuildSketch(make([]float64, 32), 16)
	b := BuildSketch(make([]float64, 32), 16)
	if !a.Compatible(b) {
		t.Error("identical layouts incompatible")
	}
	if a.Compatible(BuildSketch(make([]float64, 33), 16)) {
		t.Error("different N compatible")
	}
	if a.Compatible(BuildSketch(make([]float64, 32), 8)) {
		t.Error("different block compatible")
	}
	var nilSketch *Sketch
	if nilSketch.Compatible(a) || a.Compatible(nil) {
		t.Error("nil sketch compatible")
	}
	if lo, hi, ok := DistanceBand(a, BuildSketch(make([]float64, 33), 16), "l2"); ok || lo != 0 || !math.IsInf(hi, 1) {
		t.Errorf("incompatible band = [%v, %v] ok=%v, want uninformative", lo, hi, ok)
	}
}

// bandMetrics pairs every banded metric name with the kernel computing
// the distance the band must contain.
func bandMetrics() map[string]func(a, b []float64) float64 {
	d := func(m dist.Metric) func(a, b []float64) float64 {
		return func(a, b []float64) float64 {
			v, err := m.Distance(seq.New(a), seq.New(b))
			if err != nil {
				return math.NaN()
			}
			return v
		}
	}
	return map[string]func(a, b []float64) float64{
		"l1":     d(dist.Manhattan),
		"l2":     d(dist.Euclidean),
		"linf":   d(dist.Chebyshev),
		"band":   d(dist.Chebyshev), // the ±ε value semantics = L∞
		"norml1": d(dist.MeanAbs),
		"norml2": d(dist.RMS),
		"zl2":    d(dist.ZEuclidean),
	}
}

// TestDistanceBandSoundness is the sketch's core property: for generator
// pairs across lengths, block sizes and metrics, the band brackets the
// exactly computed distance — bit-level, thanks to the built-in slack.
func TestDistanceBandSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	type gen func() []float64
	mkSeqs := func(n int) []gen {
		return []gen{
			func() []float64 {
				f, err := synth.Fever(synth.FeverOpts{Samples: n})
				if err != nil {
					t.Fatal(err)
				}
				return f.Values()
			},
			func() []float64 {
				w, err := synth.RandomWalk(rng, n)
				if err != nil {
					t.Fatal(err)
				}
				return w.Values()
			},
			func() []float64 { return synth.Sine(n, 3, 17, 0.4).Values() },
			func() []float64 { return synth.Const(n, 36.8).Values() },
		}
	}
	metrics := bandMetrics()
	for _, n := range []int{5, 49, 97, 128} {
		for _, block := range []int{1, 7, 16, 200} {
			gens := mkSeqs(n)
			for gi, ga := range gens {
				for gj, gb := range gens {
					a, b := ga(), gb()
					qs, rs := BuildSketch(a, block), BuildSketch(b, block)
					for name, kernel := range metrics {
						lo, hi, ok := DistanceBand(qs, rs, name)
						if !ok {
							t.Fatalf("n=%d block=%d %s: band not ok", n, block, name)
						}
						d := kernel(a, b)
						if math.IsNaN(d) {
							continue // z-normalizing a constant: kernel refuses
						}
						if lo > d || d > hi {
							t.Errorf("n=%d block=%d pair(%d,%d) %s: band [%v, %v] excludes d=%v",
								n, block, gi, gj, name, lo, hi, d)
						}
						if lo < 0 || hi < lo {
							t.Errorf("%s: malformed band [%v, %v]", name, lo, hi)
						}
					}
				}
			}
		}
	}
}

// TestDistanceBandIdentical: a sketch banded against an equal sequence
// collapses to (nearly) zero on every metric.
func TestDistanceBandIdentical(t *testing.T) {
	f, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	s := BuildSketch(f.Values(), 16)
	for name := range bandMetrics() {
		lo, hi, ok := DistanceBand(s, s, name)
		if !ok || lo != 0 {
			t.Errorf("%s: self band [%v, %v] ok=%v", name, lo, hi, ok)
		}
	}
}

// TestDistanceBandConstant: constant sequences have zero residuals, so
// their bands are tight (a point, up to slack) in every metric.
func TestDistanceBandConstant(t *testing.T) {
	a := BuildSketch(synth.Const(97, 10).Values(), 16)
	b := BuildSketch(synth.Const(97, 13).Values(), 16)
	want := map[string]float64{
		"l1":     97 * 3,
		"l2":     math.Sqrt(97 * 9),
		"linf":   3,
		"band":   3,
		"norml1": 3,
		"norml2": 3,
	}
	for name, d := range want {
		lo, hi, ok := DistanceBand(a, b, name)
		if !ok {
			t.Fatalf("%s: not ok", name)
		}
		if lo > d || d > hi {
			t.Errorf("%s: band [%v, %v] excludes exact %v", name, lo, hi, d)
		}
		if hi-lo > 1e-6*d+1e-9 {
			t.Errorf("%s: zero-residual band [%v, %v] not tight", name, lo, hi)
		}
	}
}

// TestDistanceBandDegenerateLengths: sub-3-sample sketches band soundly.
func TestDistanceBandDegenerateLengths(t *testing.T) {
	for _, n := range []int{1, 2} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i + 1)
			b[i] = float64(2*i) - 0.5
		}
		qs, rs := BuildSketch(a, 16), BuildSketch(b, 16)
		for name, kernel := range bandMetrics() {
			lo, hi, ok := DistanceBand(qs, rs, name)
			if !ok {
				t.Fatalf("n=%d %s: not ok", n, name)
			}
			d := kernel(a, b)
			if math.IsNaN(d) {
				continue
			}
			if lo > d || d > hi {
				t.Errorf("n=%d %s: band [%v, %v] excludes %v", n, name, lo, hi, d)
			}
		}
	}
}

// TestDistanceBandNaN: NaN samples never reach a sketch in the engine —
// seq.Validate rejects them at ingest, and the cascade additionally
// drops NaN-edged bands before pruning — so the sketch contract here is
// containment, not detection: no panic, and the summation-based metrics
// propagate the NaN into their band edges. The comparison-based L∞ max
// may skip NaN blocks and band the finite remainder, which is why the
// cascade guard alone would not suffice without ingest validation.
func TestDistanceBandNaN(t *testing.T) {
	a := BuildSketch([]float64{1, 2, math.NaN(), 4}, 2)
	b := BuildSketch([]float64{1, 2, 3, 4}, 2)
	for name := range bandMetrics() {
		lo, hi, ok := DistanceBand(a, b, name) // must not panic
		if !ok {
			t.Fatalf("%s: not ok", name)
		}
		switch name {
		case "linf", "band":
			if math.IsNaN(lo) || lo < 0 {
				t.Errorf("%s: malformed lo %v", name, lo)
			}
		default:
			if !math.IsNaN(lo) && !math.IsNaN(hi) {
				t.Errorf("%s: NaN input produced finite band [%v, %v]", name, lo, hi)
			}
		}
	}
}

func TestDistanceBandUnknownMetric(t *testing.T) {
	s := BuildSketch([]float64{1, 2, 3, 4}, 2)
	if _, _, ok := DistanceBand(s, s, "hamming"); ok {
		t.Error("unknown metric banded")
	}
}
