package multires

import (
	"math"

	"seqrep/internal/dist"
)

// Sketch is the compact per-record summary behind the progressive query
// cascade: the sequence's comparison-form values reduced to one mean per
// fixed-size block (one rung of the piecewise-constant multiresolution
// ladder this package builds as a Pyramid) plus the norms of the residual
// — what the block means fail to capture. The block means of a query and
// a record bound their true distance from both sides without touching a
// single sample (see DistanceBand), which is what lets the sketch tier
// answer first with a guaranteed error band.
//
// The z-normalized fields carry the same summary over the z-normalized
// values, so the zl2 metric gets bands through identical machinery.
// Sketches are immutable after construction.
type Sketch struct {
	// N is the summarized sample count; Block the block size the means
	// were computed over (the last block may be short).
	N, Block int
	// Means holds one mean per block, ceil(N/Block) of them.
	Means []float64
	// R1, R2, Rinf are the L1, L2 and L∞ norms of the residual vector
	// (values minus their block mean).
	R1, R2, Rinf float64
	// ZMeans and ZR* are the same summary over the z-normalized values
	// (dist.ZNormalizeValues, the exact transform zl2 verification uses).
	ZMeans          []float64
	ZR1, ZR2, ZRinf float64
}

// NumBlocks returns how many block means a length-n sketch with the given
// block size holds.
func NumBlocks(n, block int) int {
	if n <= 0 || block <= 0 {
		return 0
	}
	return (n + block - 1) / block
}

// BuildSketch summarizes vals into a Sketch with the given block size.
// It returns nil when vals is empty or block is not positive — callers
// treat a nil sketch as "no information" (an unbounded band).
func BuildSketch(vals []float64, block int) *Sketch {
	if len(vals) == 0 || block <= 0 {
		return nil
	}
	s := &Sketch{N: len(vals), Block: block}
	s.Means, s.R1, s.R2, s.Rinf = blockSummary(vals, block)
	s.ZMeans, s.ZR1, s.ZR2, s.ZRinf = blockSummary(dist.ZNormalizeValues(vals), block)
	return s
}

// blockSummary computes per-block means and the residual norms in one
// layout shared by the plain and z-normalized halves of a sketch.
func blockSummary(vals []float64, block int) (means []float64, r1, r2, rinf float64) {
	nb := NumBlocks(len(vals), block)
	means = make([]float64, 0, nb)
	for lo := 0; lo < len(vals); lo += block {
		hi := min(lo+block, len(vals))
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		means = append(means, sum/float64(hi-lo))
	}
	ss := 0.0
	for i, v := range vals {
		r := v - means[i/block]
		a := math.Abs(r)
		r1 += a
		ss += r * r
		if a > rinf {
			rinf = a
		}
	}
	r2 = math.Sqrt(ss)
	return means, r1, r2, rinf
}

// Compatible reports whether two sketches summarize the same layout and
// can be banded against each other.
func (s *Sketch) Compatible(o *Sketch) bool {
	return s != nil && o != nil && s.N == o.N && s.Block == o.Block &&
		len(s.Means) == len(o.Means) && len(s.ZMeans) == len(o.ZMeans)
}

// Floating-point soundness slack: the band inequalities are exact in real
// arithmetic; the slack absorbs summation-order rounding so a band always
// contains the exactly-computed distance even at the bit level. Mirrors
// the lower-bound slack of the core query planner.
func soundLo(x float64) float64 {
	x = x*(1-1e-9) - 1e-12
	if x < 0 {
		return 0
	}
	return x
}

func soundHi(x float64) float64 { return x*(1+1e-9) + 1e-12 }

// DistanceBand bounds the distance between the two summarized value
// vectors under the named metric from both sides: lo <= d(q, r) <= hi for
// the true distance d. ok is false — with an uninformative [0, +Inf)
// band — when the sketches are incompatible or the metric is not one the
// sketch can band ("l1", "l2", "linf", "norml1", "norml2", "zl2", and
// "band", the ±ε value-query semantics, which equals linf).
//
// The bounds decompose each vector into its block-mean projection plus a
// residual. For L2 the projection is orthogonal, giving the exact
// decomposition ||q−r||² = m² + ||q⊥−r⊥||² with m the block-mean
// distance; for L1/L∞ the triangle inequality brackets the residual term.
// Both sides are widened by a whisker of floating-point slack so the
// guarantee survives rounding.
func DistanceBand(q, r *Sketch, metric string) (lo, hi float64, ok bool) {
	if !q.Compatible(r) {
		return 0, math.Inf(1), false
	}
	n := float64(q.N)
	switch metric {
	case "l2":
		lo, hi = l2Band(q, r)
	case "norml2":
		lo, hi = l2Band(q, r)
		rt := math.Sqrt(n)
		lo, hi = lo/rt, hi/rt
	case "l1":
		lo, hi = l1Band(q, r)
	case "norml1":
		lo, hi = l1Band(q, r)
		lo, hi = lo/n, hi/n
	case "linf", "band":
		lo, hi = linfBand(q, r)
	case "zl2":
		lo, hi = zl2Band(q, r)
	default:
		return 0, math.Inf(1), false
	}
	return soundLo(lo), soundHi(hi), true
}

// lastWeight is the sample count of the final (possibly short) block; all
// earlier blocks weigh Block samples. The weighted loops below are the
// per-record hot path of the sketch tier, so they stay closure- and
// allocation-free.
func lastWeight(s *Sketch) float64 {
	return float64(s.N - s.Block*(len(s.Means)-1))
}

func l2BandOf(qm, rm []float64, q *Sketch, qr2, rr2 float64) (lo, hi float64) {
	full := float64(q.Block)
	m2sq := 0.0
	nb := len(qm)
	for j := 0; j < nb-1; j++ {
		d := qm[j] - rm[j]
		m2sq += d * d
	}
	m2sq *= full
	d := qm[nb-1] - rm[nb-1]
	m2sq += lastWeight(q) * d * d
	rd := qr2 - rr2
	lo = math.Sqrt(m2sq + rd*rd)
	sum := qr2 + rr2
	hi = math.Sqrt(m2sq + sum*sum)
	return lo, hi
}

func l2Band(q, r *Sketch) (lo, hi float64)  { return l2BandOf(q.Means, r.Means, q, q.R2, r.R2) }
func zl2Band(q, r *Sketch) (lo, hi float64) { return l2BandOf(q.ZMeans, r.ZMeans, q, q.ZR2, r.ZR2) }

func l1Band(q, r *Sketch) (lo, hi float64) {
	full := float64(q.Block)
	m1 := 0.0
	nb := len(q.Means)
	for j := 0; j < nb-1; j++ {
		m1 += math.Abs(q.Means[j] - r.Means[j])
	}
	m1 *= full
	m1 += lastWeight(q) * math.Abs(q.Means[nb-1]-r.Means[nb-1])
	resid := q.R1 + r.R1
	lo = math.Max(m1-resid, math.Abs(q.R1-r.R1)-m1)
	if lo < 0 {
		lo = 0
	}
	return lo, m1 + resid
}

func linfBand(q, r *Sketch) (lo, hi float64) {
	minf := 0.0
	for j := range q.Means {
		if d := math.Abs(q.Means[j] - r.Means[j]); d > minf {
			minf = d
		}
	}
	resid := q.Rinf + r.Rinf
	lo = math.Max(minf-resid, math.Abs(q.Rinf-r.Rinf)-minf)
	if lo < 0 {
		lo = 0
	}
	return lo, minf + resid
}
