package multires

import (
	"testing"

	"seqrep/internal/synth"
)

func BenchmarkBuildPyramid(b *testing.B) {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{Samples: 2048})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ecg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarseToFine(b *testing.B) {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := Build(ecg, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FindPeaks(10, 1, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// The baseline the coarse-to-fine search is compared to.
func BenchmarkDirectPeaks(b *testing.B) {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := Build(ecg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PeaksAtLevel(0, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}
