// Package multires implements the multiresolution analysis the paper was
// experimenting with as future work (§7): compressing sequences so that
// features can be extracted from the compressed data rather than from the
// original. A Pyramid holds progressively coarser versions of a sequence
// (pairwise averaging, the Haar approximation ladder); peaks can be
// detected on a coarse level at a fraction of the cost and then refined
// against the original samples.
package multires

import (
	"fmt"

	"seqrep/internal/breaking"
	"seqrep/internal/feature"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
)

// Pyramid is a multi-resolution ladder: level 0 is the original sequence,
// level k+1 halves level k by averaging adjacent sample pairs (times and
// values), i.e. the normalized Haar approximation track.
type Pyramid struct {
	levels []seq.Sequence
}

// Build constructs a pyramid with at most maxLevels coarsenings (so up to
// maxLevels+1 levels including the original). Coarsening stops when a
// level would drop below 4 samples. maxLevels must be >= 1.
func Build(s seq.Sequence, maxLevels int) (*Pyramid, error) {
	if len(s) < 2 {
		return nil, fmt.Errorf("multires: need at least 2 samples, got %d", len(s))
	}
	if maxLevels < 1 {
		return nil, fmt.Errorf("multires: maxLevels must be >= 1, got %d", maxLevels)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("multires: %w", err)
	}
	p := &Pyramid{levels: []seq.Sequence{s.Clone()}}
	cur := p.levels[0]
	for lvl := 0; lvl < maxLevels && len(cur)/2 >= 4; lvl++ {
		next := make(seq.Sequence, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, seq.Point{
				T: (cur[i].T + cur[i+1].T) / 2,
				V: (cur[i].V + cur[i+1].V) / 2,
			})
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		p.levels = append(p.levels, next)
		cur = next
	}
	return p, nil
}

// Levels returns the number of levels, including the original.
func (p *Pyramid) Levels() int { return len(p.levels) }

// Level returns the sequence at level k (0 = original). The returned
// sequence shares storage with the pyramid; callers must not mutate it.
func (p *Pyramid) Level(k int) (seq.Sequence, error) {
	if k < 0 || k >= len(p.levels) {
		return nil, fmt.Errorf("multires: level %d out of range [0,%d)", k, len(p.levels))
	}
	return p.levels[k], nil
}

// PeaksAtLevel breaks level k with tolerance eps and extracts peaks with
// slope threshold delta — feature extraction from the compressed data.
//
// delta applies unscaled: because coarsening preserves the time axis,
// slopes of features wider than the averaging window survive with similar
// magnitude, while narrower wiggles flatten away — which is exactly the
// denoising one wants. Features become undetectable once their flanks
// shrink below a couple of coarse samples (see FindPeaks).
func (p *Pyramid) PeaksAtLevel(k int, eps, delta float64) ([]feature.Peak, error) {
	lvl, err := p.Level(k)
	if err != nil {
		return nil, err
	}
	segs, err := breaking.Interpolation(eps).Break(lvl)
	if err != nil {
		return nil, fmt.Errorf("multires: breaking level %d: %w", k, err)
	}
	fs, err := rep.Build(lvl, segs, nil)
	if err != nil {
		return nil, fmt.Errorf("multires: representing level %d: %w", k, err)
	}
	return feature.Peaks(fs, delta)
}

// Result reports a coarse-to-fine peak search.
type Result struct {
	// Level is the coarse level the initial detection ran on.
	Level int
	// Peaks holds the refined peaks: positions and values read from the
	// original samples.
	Peaks []feature.Peak
	// CoarseSamples and RefineSamples count the samples examined at the
	// coarse level and during refinement; their sum versus the original
	// length is the work saving.
	CoarseSamples int
	RefineSamples int
}

// FindPeaks locates peaks coarse-to-fine: detect on the deepest level that
// still has minCoarseSamples samples, then refine each peak to the exact
// local maximum of the original sequence within the coarsening window.
// eps and delta apply to the coarse detection (delta auto-scaled per
// level); minCoarseSamples <= 0 defaults to 32.
func (p *Pyramid) FindPeaks(eps, delta float64, minCoarseSamples int) (*Result, error) {
	if minCoarseSamples <= 0 {
		minCoarseSamples = 32
	}
	level := 0
	for k := len(p.levels) - 1; k > 0; k-- {
		if len(p.levels[k]) >= minCoarseSamples {
			level = k
			break
		}
	}
	coarse, err := p.PeaksAtLevel(level, eps, delta)
	if err != nil {
		return nil, err
	}
	res := &Result{Level: level, CoarseSamples: len(p.levels[level])}
	orig := p.levels[0]
	window := 2 << level // ±(2^level)·2 samples of slack around each coarse hit
	for _, cp := range coarse {
		idx := nearestIndex(orig, cp.Time)
		lo, hi := idx-window, idx+window
		if lo < 0 {
			lo = 0
		}
		if hi > len(orig)-1 {
			hi = len(orig) - 1
		}
		res.RefineSamples += hi - lo + 1
		best := lo
		for i := lo + 1; i <= hi; i++ {
			if orig[i].V > orig[best].V {
				best = i
			}
		}
		refined := cp
		refined.Time = orig[best].T
		refined.Value = orig[best].V
		res.Peaks = append(res.Peaks, refined)
	}
	return res, nil
}

// nearestIndex finds the sample index of orig whose time is closest to t.
func nearestIndex(orig seq.Sequence, t float64) int {
	lo, hi := 0, len(orig)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if orig[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	if t-orig[lo].T <= orig[hi].T-t {
		return lo
	}
	return hi
}
