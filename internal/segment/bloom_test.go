package segment

import (
	"fmt"
	"testing"
)

// TestBloomNoFalseNegatives is the filter's one hard guarantee: every
// added key tests positive, before and after a marshal round-trip.
func TestBloomNoFalseNegatives(t *testing.T) {
	f := newBloom(1000)
	for i := 0; i < 1000; i++ {
		f.add(fmt.Sprintf("seq-%06d", i))
	}
	g, err := unmarshalBloom(f.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("seq-%06d", i)
		if !f.test(id) {
			t.Fatalf("false negative for %q", id)
		}
		if !g.test(id) {
			t.Fatalf("false negative for %q after round-trip", id)
		}
	}
}

// TestBloomFalsePositiveRate checks the 10-bits/7-hashes sizing delivers
// roughly its designed ~1% false-positive rate — generous bound of 5%
// so the test never flakes on hash luck.
func TestBloomFalsePositiveRate(t *testing.T) {
	f := newBloom(10000)
	for i := 0; i < 10000; i++ {
		f.add(fmt.Sprintf("member-%06d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.test(fmt.Sprintf("absent-%06d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f, want <= 0.05", rate)
	}
}

// TestBloomUnmarshalRejectsDamage exercises the validation arms.
func TestBloomUnmarshalRejectsDamage(t *testing.T) {
	good := newBloom(10).marshal()
	cases := map[string][]byte{
		"too short":      good[:3],
		"zero hashes":    append([]byte{0}, good[1:]...),
		"huge hashes":    append([]byte{99}, good[1:]...),
		"truncated body": good[:len(good)-3],
		"count mismatch": append(append([]byte{good[0]}, 0xff, 0xff, 0xff, 0x7f), good[5:]...),
	}
	for name, blob := range cases {
		if _, err := unmarshalBloom(blob); err == nil {
			t.Errorf("%s: unmarshal accepted damaged blob", name)
		}
	}
	if _, err := unmarshalBloom(good); err != nil {
		t.Fatalf("control: good blob rejected: %v", err)
	}
}

// TestBloomEmptySegment: a zero-entry filter still marshals and loads
// (minimum one word), and everything tests negative or positive safely.
func TestBloomEmptySegment(t *testing.T) {
	f := newBloom(0)
	g, err := unmarshalBloom(f.marshal())
	if err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if g.test("anything") {
		t.Fatal("empty filter claims membership")
	}
}
