package segment

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"seqrep/internal/store"
)

// ManifestFileName is the file inside a segment directory that names the
// live segment set. The manifest is the commit point for every flush and
// compaction: segments not named by it are dead weight (orphans from a
// crash mid-flush) and are deleted at the next Open.
const ManifestFileName = "MANIFEST"

const manifestMagic = "SMF1"

// Manifest is the durable root of a segment store: the ordered live
// segment set (oldest first — readers overlay newest-wins), the highest
// write-ahead-log LSN whose effects the segments fully cover (the WAL
// can be truncated strictly below it after a checkpoint commits), and an
// opaque metadata blob owned by the caller (internal/core stores the
// pipeline scalars a reboot needs before it can decode payloads).
type Manifest struct {
	// LSN is the first WAL offset NOT covered by the segments: replay
	// must resume at LSN, and wal.TruncateBefore(LSN) is safe.
	LSN uint64 `json:"lsn"`
	// Segments lists live segment file names (not paths), oldest first.
	Segments []string `json:"segments"`
	// Meta is the caller's opaque configuration blob.
	Meta json.RawMessage `json:"meta,omitempty"`
}

// writeManifest commits m at dir/MANIFEST: temp file, fsync, rename,
// directory sync. Layout: magic "SMF1" | crc u32 over the JSON | JSON.
// The rename is the commit point — a crash on either side leaves a
// complete manifest (old or new), never a torn one.
func writeManifest(dir string, m *Manifest) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("segment: encoding manifest: %w", err)
	}
	buf := make([]byte, 0, 8+len(body))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))
	buf = append(buf, body...)

	tmp, err := os.CreateTemp(dir, ManifestFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("segment: manifest temp file: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("segment: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("segment: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("segment: closing manifest: %w", err)
	}
	path := filepath.Join(dir, ManifestFileName)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("segment: committing manifest: %w", err)
	}
	if err := store.SyncDir(dir); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	return nil
}

// loadManifest reads and validates dir/MANIFEST. A missing file returns
// (nil, nil) — an empty store; damage returns ErrCorrupt.
func loadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segment: reading manifest: %w", err)
	}
	if len(data) < 8 || string(data[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: %s: not a segment manifest", ErrCorrupt, path)
	}
	body := data[8:]
	if got, want := binary.LittleEndian.Uint32(data[4:8]), crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: %s: manifest crc %08x, computed %08x", ErrCorrupt, path, got, want)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: %s: manifest body: %v", ErrCorrupt, path, err)
	}
	seen := make(map[string]bool, len(m.Segments))
	for _, name := range m.Segments {
		if name == "" || name != filepath.Base(name) {
			return nil, fmt.Errorf("%w: %s: invalid segment name %q", ErrCorrupt, path, name)
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: %s: duplicate segment name %q", ErrCorrupt, path, name)
		}
		seen[name] = true
	}
	return &m, nil
}
