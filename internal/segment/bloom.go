package segment

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// bloom is a standard Bloom filter over sequence ids, one per segment,
// so a Get for an id a segment does not hold usually costs two hashes
// and a few word probes instead of a binary search plus (for overlapping
// tiers) a disk read. Sized at bloomBitsPerKey bits per key with
// bloomHashes probes (~1% false positives at 10/7); false negatives are
// impossible, so the filter can only ever send a lookup to the index it
// would have consulted anyway.
//
// Probes use Kirsch-Mitzenmacher double hashing g_i = h1 + i·h2 over two
// independent 64-bit FNV variants. Both hashes are stable across
// processes and architectures — the filter is persisted with its segment
// and must answer identically after a reboot.
type bloom struct {
	words []uint64
	k     uint8
}

const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	bits := n * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	return &bloom{
		words: make([]uint64, (bits+63)/64),
		k:     bloomHashes,
	}
}

// bloomHash returns the two base hashes for id. h2 is forced odd so the
// probe sequence h1 + i·h2 walks distinct positions mod a power of two.
func bloomHash(id string) (uint64, uint64) {
	a := fnv.New64a()
	a.Write([]byte(id))
	h1 := a.Sum64()
	b := fnv.New64()
	b.Write([]byte(id))
	h2 := b.Sum64() | 1
	return h1, h2
}

func (f *bloom) add(id string) {
	h1, h2 := bloomHash(id)
	m := uint64(len(f.words)) * 64
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) % m
		f.words[bit/64] |= 1 << (bit % 64)
	}
}

// test reports whether id may be in the set (no false negatives).
func (f *bloom) test(id string) bool {
	h1, h2 := bloomHash(id)
	m := uint64(len(f.words)) * 64
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) % m
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter: k u8 | nwords u32 | words u64×nwords.
func (f *bloom) marshal() []byte {
	out := make([]byte, 1+4+8*len(f.words))
	out[0] = byte(f.k)
	binary.LittleEndian.PutUint32(out[1:5], uint32(len(f.words)))
	for i, w := range f.words {
		binary.LittleEndian.PutUint64(out[5+8*i:], w)
	}
	return out
}

func unmarshalBloom(data []byte) (*bloom, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("bloom blob of %d bytes is too short", len(data))
	}
	k := data[0]
	if k == 0 || k > 32 {
		return nil, fmt.Errorf("implausible bloom hash count %d", k)
	}
	n := binary.LittleEndian.Uint32(data[1:5])
	if int(n) != (len(data)-5)/8 || len(data) != 5+8*int(n) {
		return nil, fmt.Errorf("bloom blob of %d bytes does not hold %d words", len(data), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("empty bloom filter")
	}
	f := &bloom{words: make([]uint64, n), k: k}
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(data[5+8*i:])
	}
	return f, nil
}
