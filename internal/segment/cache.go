package segment

import (
	"container/list"
	"sync"
)

// Cache is a byte-bounded LRU over segment payloads, shared by every
// reader of a store: record payloads live on disk in immutable segments
// and are faulted in on demand, so resident memory for payloads is
// bounded by the cache, not by the database. Keys are (segment path,
// frame offset) — segments are immutable and never reuse a name (the
// sequence number in the file name only grows), so an entry can never go
// stale; eviction is the only way out.
//
// The cache never shares byte slices across its boundary: put stores
// its own copy of the payload and get hands out a fresh copy, so no
// caller mutation — upstream decoders, downstream consumers, the
// paging fan-out of the residency subsystem — can corrupt a cached
// frame or another reader's view of it.
type Cache struct {
	mu   sync.Mutex
	max  int64
	used int64
	ll   *list.List
	m    map[cacheKey]*list.Element

	hits, misses uint64
}

type cacheKey struct {
	path string
	off  int64
}

type cacheEntry struct {
	key     cacheKey
	payload []byte
}

// NewCache builds a cache bounded at maxBytes of payload. maxBytes <= 0
// returns nil — a nil *Cache is valid and caches nothing.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		max: maxBytes,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element),
	}
}

func (c *Cache) get(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	// Defensive copy: the retained slice must never escape, or a caller
	// mutation would silently corrupt every later hit on this frame.
	return append([]byte(nil), el.Value.(*cacheEntry).payload...), true
}

func (c *Cache) put(key cacheKey, payload []byte) {
	if c == nil || int64(len(payload)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	// Store a private copy for the same reason get returns one: the
	// caller's buffer may be reused or mutated after the put.
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, payload: append([]byte(nil), payload...)})
	c.used += int64(len(payload))
	for c.used > c.max {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.m, ent.key)
		c.used -= int64(len(ent.payload))
	}
}

// CacheStats is a point-in-time view for health reporting and tests.
type CacheStats struct {
	Entries int
	Bytes   int64
	Hits    uint64
	Misses  uint64
}

// Stats returns the cache's current occupancy and hit counters. A nil
// cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(),
		Bytes:   c.used,
		Hits:    c.hits,
		Misses:  c.misses,
	}
}
