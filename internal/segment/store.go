package segment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultCompactThreshold is the segment count at which a flush triggers
// a full-merge compaction. Small on purpose: checkpoints are the only
// writer, so the tier grows by one segment per checkpoint and a low
// threshold keeps read overlays and tombstone debt shallow.
const DefaultCompactThreshold = 8

// Store is an LSM-style tier of immutable segments under one directory,
// rooted in a MANIFEST. One writer (the database checkpoint path) and
// any number of readers may use it concurrently.
//
// Write protocol (Flush): write the new segment file (atomic rename),
// then commit a new manifest naming old segments + new one and the WAL
// LSN the set now covers. The manifest rename is the single commit
// point; a crash before it leaves an orphan segment file that the next
// Open deletes, a crash after it is a completed flush.
//
// Compaction (Compact) merges every live segment newest-wins into one,
// drops tombstones (a full merge has nothing older for a tombstone to
// shadow), commits a manifest naming only the merged segment, then
// deletes the replaced files. Crash windows mirror Flush: pre-manifest
// leaves an orphan, post-manifest leaves garbage old segments that the
// next Open sweeps.
type Store struct {
	dir   string
	cache *Cache

	mu      sync.RWMutex
	readers []*Reader // oldest first; overlay newest-wins
	lsn     uint64
	meta    json.RawMessage
	hasMan  bool // a manifest exists on disk (distinguishes empty-set from never-flushed)
	nextSeq uint64

	compactThreshold int
	compactions      uint64

	// wrapWriter, when set, decorates segment data writers — the fault
	// injection hook for tests (compare store.FileArchive.WrapWriter).
	// Manifest writes are not wrapped: they are tiny and the interesting
	// failures (torn manifest) are exercised by crash-cut tests instead.
	wrapWriter func(io.Writer) io.Writer

	// readFault, when set, is consulted at the top of every point lookup
	// — the cold-read fault-injection hook (chaos suite) mirroring
	// wrapWriter on the write side. A non-nil error fails that Get only;
	// the store itself is untouched.
	readFault func() error
}

const (
	segPrefix = "seg-"
	segSuffix = ".sseg"
)

func segName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix)
}

// segSeq parses the sequence number out of a segment file name.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open loads the segment store in dir, creating the directory if needed.
// Orphan segment files the manifest does not name — leftovers of a crash
// between segment write and manifest commit — are deleted. cache may be
// nil (payload reads go straight to disk). compactThreshold <= 0 selects
// DefaultCompactThreshold; pass a negative value via SetCompactThreshold
// to disable compaction outright.
func Open(dir string, cache *Cache, compactThreshold int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: creating %s: %w", dir, err)
	}
	if compactThreshold == 0 {
		compactThreshold = DefaultCompactThreshold
	}
	s := &Store{dir: dir, cache: cache, compactThreshold: compactThreshold}

	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	live := make(map[string]bool)
	if man != nil {
		s.hasMan = true
		s.lsn = man.LSN
		s.meta = man.Meta
		for _, name := range man.Segments {
			live[name] = true
			r, err := OpenReader(filepath.Join(dir, name), cache)
			if err != nil {
				s.closeReaders()
				return nil, err
			}
			s.readers = append(s.readers, r)
			if seq, ok := segSeq(name); ok && seq >= s.nextSeq {
				s.nextSeq = seq + 1
			}
		}
	}

	// Sweep orphans: segment files (and stale temp files) the manifest
	// does not reference. Advancing nextSeq past orphan sequence numbers
	// keeps names unique even when the orphan was written by a crashed
	// flush that never committed.
	names, err := os.ReadDir(dir)
	if err != nil {
		s.closeReaders()
		return nil, fmt.Errorf("segment: reading %s: %w", dir, err)
	}
	for _, de := range names {
		name := de.Name()
		if name == ManifestFileName || live[name] {
			continue
		}
		if seq, ok := segSeq(name); ok {
			if seq >= s.nextSeq {
				s.nextSeq = seq + 1
			}
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.Contains(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return s, nil
}

func (s *Store) closeReaders() {
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = nil
}

// SetWrapWriter installs a writer decorator applied to segment data
// files — the fault-injection hook for tests. Not safe to change while
// a Flush or Compact is in flight.
func (s *Store) SetWrapWriter(wrap func(io.Writer) io.Writer) {
	s.mu.Lock()
	s.wrapWriter = wrap
	s.mu.Unlock()
}

// SetReadFault installs a hook invoked before every point lookup (Get)
// reads the tier — the cold-read fault-injection counterpart of
// SetWrapWriter, used by the chaos suite to exercise paging failures.
// A returned error fails that lookup only. Pass nil to remove.
func (s *Store) SetReadFault(hook func() error) {
	s.mu.Lock()
	s.readFault = hook
	s.mu.Unlock()
}

// SetCompactThreshold overrides the segment count that triggers
// compaction. Negative disables compaction; zero restores the default.
func (s *Store) SetCompactThreshold(n int) {
	s.mu.Lock()
	if n == 0 {
		n = DefaultCompactThreshold
	}
	s.compactThreshold = n
	s.mu.Unlock()
}

// HasManifest reports whether a manifest has ever been committed —
// i.e. whether this store has state, even if the segment set is empty.
func (s *Store) HasManifest() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hasMan
}

// LSN returns the WAL offset the committed segment set covers: replay
// resumes here, truncation below here is safe.
func (s *Store) LSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lsn
}

// Meta returns the caller's opaque metadata blob from the manifest.
func (s *Store) Meta() json.RawMessage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta
}

// Flush commits entries (strictly ascending by id; tombstones for
// removed records) as a new segment and advances the covered WAL LSN to
// lsn, storing meta alongside. An empty entries slice commits a
// manifest-only LSN advance — needed when a checkpoint finds nothing
// dirty but still wants to let the WAL go.
func (s *Store) Flush(entries []Entry, lsn uint64, meta json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	newSegments := make([]string, 0, len(s.readers)+1)
	for _, r := range s.readers {
		newSegments = append(newSegments, filepath.Base(r.Path()))
	}

	var newReader *Reader
	if len(entries) > 0 {
		name := segName(s.nextSeq)
		path := filepath.Join(s.dir, name)
		if err := WriteFile(path, entries, s.wrapWriter); err != nil {
			return err
		}
		r, err := OpenReader(path, s.cache)
		if err != nil {
			os.Remove(path)
			return err
		}
		newReader = r
		newSegments = append(newSegments, name)
	}

	man := &Manifest{LSN: lsn, Segments: newSegments, Meta: meta}
	if err := writeManifest(s.dir, man); err != nil {
		// The segment file (if any) is now an orphan; remove it so a
		// persistently failing manifest path doesn't leak disk, and roll
		// the sequence forward regardless — names are never reused.
		if newReader != nil {
			newReader.Close()
			os.Remove(newReader.Path())
			s.nextSeq++
		}
		return err
	}
	if newReader != nil {
		s.readers = append(s.readers, newReader)
		s.nextSeq++
	}
	s.lsn = lsn
	s.meta = meta
	s.hasMan = true
	return nil
}

// Get resolves id across the segment overlay, newest segment first.
// found reports whether any segment holds an entry for id; tombstone
// marks the newest entry as a deletion. The payload is the caller's to
// keep: cache hits are defensive copies (see Cache).
func (s *Store) Get(id string) (payload []byte, tombstone, found bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.readFault != nil {
		if err := s.readFault(); err != nil {
			return nil, false, false, err
		}
	}
	for i := len(s.readers) - 1; i >= 0; i-- {
		p, tomb, ok, err := s.readers[i].Get(id)
		if err != nil {
			return nil, false, false, err
		}
		if ok {
			return p, tomb, true, nil
		}
	}
	return nil, false, false, nil
}

// Iterate calls fn for every live record in the overlay (newest-wins,
// tombstones excluded), in ascending id order. The payload slice is
// owned by the iteration: callers must copy it to retain it.
func (s *Store) Iterate(fn func(id string, payload []byte) error) error {
	s.mu.RLock()
	readers := make([]*Reader, len(s.readers))
	copy(readers, s.readers)
	s.mu.RUnlock()
	merged, err := mergeEntries(readers, false)
	if err != nil {
		return err
	}
	for _, e := range merged {
		if err := fn(e.ID, e.Payload); err != nil {
			return err
		}
	}
	return nil
}

// mergeEntries materializes the newest-wins merge of readers in
// ascending id order. keepTombstones retains deletion markers (used by
// nothing today — a full merge always drops them — but keeps the merge
// honest if partial compaction ever arrives).
func mergeEntries(readers []*Reader, keepTombstones bool) ([]Entry, error) {
	// Newest-wins by visiting newest readers first and keeping the first
	// entry seen per id. Segment sizes here are bounded by checkpoint
	// deltas, so an in-memory merge is fine; a heap-based streaming merge
	// is the upgrade path if segments ever outgrow RAM.
	seen := make(map[string]bool)
	var out []Entry
	for i := len(readers) - 1; i >= 0; i-- {
		r := readers[i]
		for j, id := range r.ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			if r.flags[j]&flagTombstone != 0 {
				if keepTombstones {
					out = append(out, Entry{ID: id, Tombstone: true})
				}
				continue
			}
			p, err := r.payloadAt(j)
			if err != nil {
				return nil, err
			}
			out = append(out, Entry{ID: id, Payload: p})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Compact merges all live segments into one, dropping tombstones, when
// the segment count has reached the compaction threshold. Returns true
// when a merge ran. Callers invoke it after Flush; it is cheap to call
// when below threshold.
func (s *Store) Compact() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compactThreshold <= 0 || len(s.readers) < s.compactThreshold {
		return false, nil
	}
	merged, err := mergeEntries(s.readers, false)
	if err != nil {
		return false, err
	}

	var newReaders []*Reader
	var names []string
	if len(merged) > 0 {
		name := segName(s.nextSeq)
		path := filepath.Join(s.dir, name)
		if err := WriteFile(path, merged, s.wrapWriter); err != nil {
			return false, err
		}
		r, err := OpenReader(path, s.cache)
		if err != nil {
			os.Remove(path)
			return false, err
		}
		newReaders = []*Reader{r}
		names = []string{name}
	}
	man := &Manifest{LSN: s.lsn, Segments: names, Meta: s.meta}
	if err := writeManifest(s.dir, man); err != nil {
		for _, r := range newReaders {
			r.Close()
			os.Remove(r.Path())
		}
		s.nextSeq++
		return false, err
	}
	s.nextSeq++
	old := s.readers
	s.readers = newReaders
	for _, r := range old {
		r.Close()
		os.Remove(r.Path())
	}
	s.compactions++
	return true, nil
}

// Stats is a point-in-time view of the tier for health endpoints.
type Stats struct {
	Segments    int        `json:"segments"`
	Entries     int        `json:"entries"`
	Tombstones  int        `json:"tombstones"`
	Bytes       int64      `json:"bytes"`
	LSN         uint64     `json:"lsn"`
	Compactions uint64     `json:"compactions"`
	Cache       CacheStats `json:"cache"`
}

// Stats reports segment counts, byte footprint, tombstone debt, and
// cache occupancy.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Segments:    len(s.readers),
		LSN:         s.lsn,
		Compactions: s.compactions,
		Cache:       s.cache.Stats(),
	}
	for _, r := range s.readers {
		st.Entries += r.Len()
		st.Tombstones += r.Tombstones()
		st.Bytes += r.Bytes()
	}
	return st
}

// Close releases every open segment file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	return first
}
