// Package segment implements the on-disk tier behind O(delta)
// checkpoints (docs/STORAGE.md): immutable, sorted-by-id segment files
// holding record payloads and tombstones, a Bloom filter per segment for
// cheap negative lookups, an fsync-correct MANIFEST naming the live
// segment set plus the write-ahead-log LSN it covers, and LSM-style
// full-merge compaction that folds the tier back to one segment and
// drops tombstones once the segment count crosses a threshold.
//
// Payloads are opaque to this package — the database layer
// (internal/core) encodes them. Payload bytes are not resident: a
// segment keeps only its id index and Bloom filter in memory, and reads
// payload frames from disk on demand through a shared byte-bounded LRU
// (Cache), so memory for the stored payload tier is bounded by the cache
// size rather than the database size.
//
// # Segment file format
//
// A segment file (seg-<seq>.sseg, <seq> a 16-hex-digit sequence number
// that only ever grows) is written once, fsync'd, renamed into place and
// never modified:
//
//	header  magic "SSG1" (4 bytes) | count u32
//	frames  count entry frames, ascending strictly by id:
//	          crc u32 (CRC-32C over body) | blen u32 | body
//	          body: flags u8 (bit0 = tombstone) | idLen u16 | id | payload
//	index   one frame: per entry flags u8 | idLen u16 | id | offset u64
//	bloom   one frame: k u8 | nwords u32 | words u64×nwords
//	trailer indexOff u64 | bloomOff u64 | count u32 |
//	        crc u32 (CRC-32C over the preceding 20 bytes) | magic "1GSS"
//
// Because segments are immutable and land by atomic rename, a crash can
// never tear one under a live name: a file is either whole or absent
// (or an orphan no manifest references, removed at the next Open).
// Every structure a reader trusts — trailer, index, bloom, each entry
// frame — is CRC-framed, so bit rot fails loudly instead of serving
// wrong payloads.
package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"seqrep/internal/store"
)

const (
	segMagic     = "SSG1"
	trailerMagic = "1GSS"
	headerSize   = 4 + 4             // magic, count
	frameHead    = 4 + 4             // crc, body length
	trailerSize  = 8 + 8 + 4 + 4 + 4 // indexOff, bloomOff, count, crc, magic

	// maxBody bounds one frame body so a corrupt length field cannot
	// drive a multi-gigabyte allocation.
	maxBody = 1 << 30
	// maxEntries bounds a segment's entry count against corrupt headers.
	maxEntries = 1 << 26

	flagTombstone = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a segment or manifest whose framing or checksums do
// not hold — damage that must fail the open rather than silently serve
// wrong or partial data. Segments and manifests are written atomically,
// so ErrCorrupt means bit rot or a truncated copy, never a normal crash.
var ErrCorrupt = errors.New("segment: corrupt file")

// Entry is one record in a segment: a payload under an id, or a
// tombstone marking the id as deleted in every older segment.
type Entry struct {
	ID        string
	Tombstone bool
	Payload   []byte
}

// WriteFile writes entries (which must be strictly ascending by id) as
// an immutable segment at path: temp file in the same directory, full
// fsync, atomic rename, directory sync. wrap, when non-nil, decorates
// the data writer — the fault-injection hook (compare
// store.FileArchive.WrapWriter); production callers pass nil.
func WriteFile(path string, entries []Entry, wrap func(io.Writer) io.Writer) (err error) {
	for i, e := range entries {
		if e.ID == "" {
			return fmt.Errorf("segment: entry %d has an empty id", i)
		}
		if len(e.ID) > int(^uint16(0)) {
			return fmt.Errorf("segment: id %q too long", e.ID[:32])
		}
		if i > 0 && entries[i-1].ID >= e.ID {
			return fmt.Errorf("segment: entries not strictly ascending at %d (%q >= %q)", i, entries[i-1].ID, e.ID)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("segment: temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(tmp)
	}
	bw := bufio.NewWriter(w)

	// The offset of everything written so far, tracked by our own
	// counter: frame offsets in the index must describe the file layout,
	// not whatever a wrapped (possibly failing) writer reports.
	off := int64(0)
	write := func(p []byte) error {
		if err := writeFull(bw, p); err != nil {
			return err
		}
		off += int64(len(p))
		return nil
	}
	writeFrame := func(body []byte) error {
		var head [frameHead]byte
		binary.LittleEndian.PutUint32(head[:4], crc32.Checksum(body, crcTable))
		binary.LittleEndian.PutUint32(head[4:], uint32(len(body)))
		if err := write(head[:]); err != nil {
			return err
		}
		return write(body)
	}

	var hdr [headerSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(entries)))
	if err = write(hdr[:]); err != nil {
		return fmt.Errorf("segment: writing %s: %w", path, err)
	}

	offsets := make([]int64, len(entries))
	filter := newBloom(len(entries))
	for i, e := range entries {
		offsets[i] = off
		filter.add(e.ID)
		body := make([]byte, 1+2+len(e.ID)+len(e.Payload))
		if e.Tombstone {
			body[0] = flagTombstone
		}
		binary.LittleEndian.PutUint16(body[1:3], uint16(len(e.ID)))
		copy(body[3:], e.ID)
		copy(body[3+len(e.ID):], e.Payload)
		if err = writeFrame(body); err != nil {
			return fmt.Errorf("segment: writing %s: %w", path, err)
		}
	}

	indexOff := off
	index := make([]byte, 0, len(entries)*(1+2+16+8))
	for i, e := range entries {
		flags := byte(0)
		if e.Tombstone {
			flags = flagTombstone
		}
		index = append(index, flags)
		index = binary.LittleEndian.AppendUint16(index, uint16(len(e.ID)))
		index = append(index, e.ID...)
		index = binary.LittleEndian.AppendUint64(index, uint64(offsets[i]))
	}
	if err = writeFrame(index); err != nil {
		return fmt.Errorf("segment: writing %s index: %w", path, err)
	}
	bloomOff := off
	if err = writeFrame(filter.marshal()); err != nil {
		return fmt.Errorf("segment: writing %s bloom: %w", path, err)
	}

	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(tr[8:16], uint64(bloomOff))
	binary.LittleEndian.PutUint32(tr[16:20], uint32(len(entries)))
	binary.LittleEndian.PutUint32(tr[20:24], crc32.Checksum(tr[:20], crcTable))
	copy(tr[24:], trailerMagic)
	if err = write(tr[:]); err != nil {
		return fmt.Errorf("segment: writing %s trailer: %w", path, err)
	}

	if err = bw.Flush(); err != nil {
		return fmt.Errorf("segment: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("segment: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("segment: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("segment: committing %s: %w", path, err)
	}
	if err = store.SyncDir(dir); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	return nil
}

func writeFull(w io.Writer, p []byte) error {
	_, err := w.Write(p)
	return err
}

// Reader serves one immutable segment. It keeps the id index (ids,
// flags, frame offsets) and the Bloom filter resident; payloads stay on
// disk and are read on demand, optionally through a shared Cache. Safe
// for concurrent use — reads go through (*os.File).ReadAt.
type Reader struct {
	path  string
	f     *os.File
	size  int64
	ids   []string
	flags []byte
	offs  []int64
	bloom *bloom
	cache *Cache
}

// OpenReader validates and opens a segment file. cache may be nil.
func OpenReader(path string, cache *Cache) (_ *Reader, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: opening %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	size := info.Size()
	if size < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %s: %d bytes is too short for a segment", ErrCorrupt, path, size)
	}

	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("segment: %s header: %w", path, err)
	}
	if string(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, hdr[:4])
	}
	count := binary.LittleEndian.Uint32(hdr[4:])

	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("segment: %s trailer: %w", path, err)
	}
	if string(tr[24:28]) != trailerMagic {
		return nil, fmt.Errorf("%w: %s: bad trailer magic %q", ErrCorrupt, path, tr[24:28])
	}
	if got, want := binary.LittleEndian.Uint32(tr[20:24]), crc32.Checksum(tr[:20], crcTable); got != want {
		return nil, fmt.Errorf("%w: %s: trailer crc %08x, computed %08x", ErrCorrupt, path, got, want)
	}
	indexOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	bloomOff := int64(binary.LittleEndian.Uint64(tr[8:16]))
	if tc := binary.LittleEndian.Uint32(tr[16:20]); tc != count {
		return nil, fmt.Errorf("%w: %s: trailer count %d disagrees with header count %d", ErrCorrupt, path, tc, count)
	}
	if count > maxEntries {
		return nil, fmt.Errorf("%w: %s: implausible entry count %d", ErrCorrupt, path, count)
	}
	if indexOff < headerSize || bloomOff <= indexOff || bloomOff >= size-trailerSize {
		return nil, fmt.Errorf("%w: %s: inconsistent section offsets (index %d, bloom %d, size %d)", ErrCorrupt, path, indexOff, bloomOff, size)
	}

	index, err := readFrameAt(f, path, indexOff, bloomOff-indexOff)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		path:  path,
		f:     f,
		size:  size,
		ids:   make([]string, 0, count),
		flags: make([]byte, 0, count),
		offs:  make([]int64, 0, count),
		cache: cache,
	}
	for len(index) > 0 {
		if len(index) < 3 {
			return nil, fmt.Errorf("%w: %s: truncated index entry", ErrCorrupt, path)
		}
		flags := index[0]
		idLen := int(binary.LittleEndian.Uint16(index[1:3]))
		if len(index) < 3+idLen+8 {
			return nil, fmt.Errorf("%w: %s: truncated index entry", ErrCorrupt, path)
		}
		id := string(index[3 : 3+idLen])
		off := int64(binary.LittleEndian.Uint64(index[3+idLen:]))
		if id == "" || off < headerSize || off >= indexOff {
			return nil, fmt.Errorf("%w: %s: invalid index entry (id %q, offset %d)", ErrCorrupt, path, id, off)
		}
		if n := len(r.ids); n > 0 && r.ids[n-1] >= id {
			return nil, fmt.Errorf("%w: %s: index ids not strictly ascending at %q", ErrCorrupt, path, id)
		}
		r.ids = append(r.ids, id)
		r.flags = append(r.flags, flags)
		r.offs = append(r.offs, off)
		index = index[3+idLen+8:]
	}
	if uint32(len(r.ids)) != count {
		return nil, fmt.Errorf("%w: %s: index holds %d entries, header says %d", ErrCorrupt, path, len(r.ids), count)
	}

	bloomBody, err := readFrameAt(f, path, bloomOff, size-trailerSize-bloomOff)
	if err != nil {
		return nil, err
	}
	if r.bloom, err = unmarshalBloom(bloomBody); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return r, nil
}

// readFrameAt reads and CRC-verifies one frame whose head starts at off
// and whose total length must not exceed limit.
func readFrameAt(f *os.File, path string, off, limit int64) ([]byte, error) {
	if limit < frameHead {
		return nil, fmt.Errorf("%w: %s: no room for a frame at %d", ErrCorrupt, path, off)
	}
	var head [frameHead]byte
	if _, err := f.ReadAt(head[:], off); err != nil {
		return nil, fmt.Errorf("%w: %s frame at %d: %v", ErrCorrupt, path, off, err)
	}
	crc := binary.LittleEndian.Uint32(head[:4])
	blen := binary.LittleEndian.Uint32(head[4:])
	if blen > maxBody || int64(blen) > limit-frameHead {
		return nil, fmt.Errorf("%w: %s frame at %d: implausible body length %d", ErrCorrupt, path, off, blen)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(io.NewSectionReader(f, off+frameHead, int64(blen)), body); err != nil {
		return nil, fmt.Errorf("%w: %s frame at %d: %v", ErrCorrupt, path, off, err)
	}
	if got := crc32.Checksum(body, crcTable); got != crc {
		return nil, fmt.Errorf("%w: %s frame at %d: crc %08x, computed %08x", ErrCorrupt, path, off, crc, got)
	}
	return body, nil
}

// Len returns the entry count (live + tombstones).
func (r *Reader) Len() int { return len(r.ids) }

// Tombstones counts the tombstone entries.
func (r *Reader) Tombstones() int {
	n := 0
	for _, fl := range r.flags {
		if fl&flagTombstone != 0 {
			n++
		}
	}
	return n
}

// Bytes returns the segment file's size.
func (r *Reader) Bytes() int64 { return r.size }

// Path returns the segment file's path.
func (r *Reader) Path() string { return r.path }

// find returns the index position of id, or -1 — Bloom-gated, so misses
// are usually free.
func (r *Reader) find(id string) int {
	if len(r.ids) == 0 || !r.bloom.test(id) {
		return -1
	}
	i := sort.SearchStrings(r.ids, id)
	if i < len(r.ids) && r.ids[i] == id {
		return i
	}
	return -1
}

// Get returns the payload stored under id. ok reports whether the
// segment holds an entry for id at all; tombstone marks a held deletion
// (payload nil). The returned payload is the caller's to keep: cache
// hits are defensive copies, so mutation cannot corrupt other readers.
func (r *Reader) Get(id string) (payload []byte, tombstone, ok bool, err error) {
	i := r.find(id)
	if i < 0 {
		return nil, false, false, nil
	}
	if r.flags[i]&flagTombstone != 0 {
		return nil, true, true, nil
	}
	p, err := r.payloadAt(i)
	if err != nil {
		return nil, false, false, err
	}
	return p, false, true, nil
}

// payloadAt reads entry i's payload frame from disk, through the shared
// cache when one is attached.
func (r *Reader) payloadAt(i int) ([]byte, error) {
	key := cacheKey{path: r.path, off: r.offs[i]}
	if p, ok := r.cache.get(key); ok {
		return p, nil
	}
	end := r.size - trailerSize
	if i+1 < len(r.offs) {
		end = r.offs[i+1]
	} else {
		// Last entry: its frame ends where the index begins. The index
		// offset was validated at open; recompute it from the trailer is
		// unnecessary — any offset between frames fails the CRC anyway —
		// but bound the read to the file.
		end = r.size
	}
	body, err := readFrameAt(r.f, r.path, r.offs[i], end-r.offs[i])
	if err != nil {
		return nil, err
	}
	if len(body) < 3 {
		return nil, fmt.Errorf("%w: %s: entry %d body too short", ErrCorrupt, r.path, i)
	}
	idLen := int(binary.LittleEndian.Uint16(body[1:3]))
	if len(body) < 3+idLen || string(body[3:3+idLen]) != r.ids[i] {
		return nil, fmt.Errorf("%w: %s: entry %d id does not match its index", ErrCorrupt, r.path, i)
	}
	payload := body[3+idLen:]
	r.cache.put(key, payload)
	return payload, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
