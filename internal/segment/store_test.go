package segment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"seqrep/internal/store"
)

func mustOpen(t *testing.T, dir string, threshold int) *Store {
	t.Helper()
	s, err := Open(dir, NewCache(1<<20), threshold)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func flushN(t *testing.T, s *Store, base, n int, lsn uint64) {
	t.Helper()
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("rec-%05d", base+i)
		entries = append(entries, Entry{ID: id, Payload: []byte("v:" + id)})
	}
	if err := s.Flush(entries, lsn, nil); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestStoreFlushGetOverlay: newest segment wins, tombstones shadow older
// live entries, and the overlay survives a close/reopen.
func TestStoreFlushGetOverlay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1) // compaction off: test the raw overlay
	flushN(t, s, 0, 10, 100)
	// Second flush: overwrite rec-00003, tombstone rec-00005.
	err := s.Flush([]Entry{
		{ID: "rec-00003", Payload: []byte("updated")},
		{ID: "rec-00005", Tombstone: true},
	}, 200, json.RawMessage(`{"v":1}`))
	if err != nil {
		t.Fatalf("Flush 2: %v", err)
	}

	check := func(s *Store, label string) {
		t.Helper()
		p, tomb, ok, err := s.Get("rec-00003")
		if err != nil || !ok || tomb || string(p) != "updated" {
			t.Fatalf("%s: rec-00003 = (%q,%v,%v,%v), want updated", label, p, tomb, ok, err)
		}
		_, tomb, ok, err = s.Get("rec-00005")
		if err != nil || !ok || !tomb {
			t.Fatalf("%s: rec-00005 tombstone not visible (%v,%v,%v)", label, tomb, ok, err)
		}
		p, tomb, ok, err = s.Get("rec-00001")
		if err != nil || !ok || tomb || string(p) != "v:rec-00001" {
			t.Fatalf("%s: rec-00001 = (%q,%v,%v,%v)", label, p, tomb, ok, err)
		}
		if _, _, ok, _ := s.Get("rec-99999"); ok {
			t.Fatalf("%s: absent id found", label)
		}
		if got := s.LSN(); got != 200 {
			t.Fatalf("%s: LSN = %d, want 200", label, got)
		}
		if string(s.Meta()) != `{"v":1}` {
			t.Fatalf("%s: Meta = %q", label, s.Meta())
		}
		// Iterate must exclude the tombstoned id and apply the overwrite.
		seen := map[string]string{}
		if err := s.Iterate(func(id string, p []byte) error {
			seen[id] = string(append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("%s: Iterate: %v", label, err)
		}
		if len(seen) != 9 {
			t.Fatalf("%s: Iterate saw %d live records, want 9", label, len(seen))
		}
		if seen["rec-00003"] != "updated" {
			t.Fatalf("%s: Iterate served stale rec-00003 %q", label, seen["rec-00003"])
		}
		if _, ok := seen["rec-00005"]; ok {
			t.Fatalf("%s: Iterate served tombstoned rec-00005", label)
		}
	}
	check(s, "live")

	s.Close()
	s2 := mustOpen(t, dir, -1)
	if st := s2.Stats(); st.Segments != 2 || st.Tombstones != 1 {
		t.Fatalf("reopen stats: %+v", st)
	}
	check(s2, "reopened")
}

// TestStoreEmptyFlushAdvancesLSN: a checkpoint with nothing dirty still
// commits a manifest so the WAL can be truncated.
func TestStoreEmptyFlushAdvancesLSN(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if s.HasManifest() {
		t.Fatal("fresh store claims a manifest")
	}
	if err := s.Flush(nil, 4096, nil); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if !s.HasManifest() || s.LSN() != 4096 {
		t.Fatalf("after empty flush: hasManifest=%v lsn=%d", s.HasManifest(), s.LSN())
	}
	if st := s.Stats(); st.Segments != 0 {
		t.Fatalf("empty flush created a segment: %+v", st)
	}
	s.Close()
	s2 := mustOpen(t, dir, 0)
	if !s2.HasManifest() || s2.LSN() != 4096 {
		t.Fatalf("reopen after empty flush: hasManifest=%v lsn=%d", s2.HasManifest(), s2.LSN())
	}
}

// TestStoreCompaction: at threshold, segments fold into one, tombstones
// vanish, the merged data is right, and old files are deleted.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 3)
	flushN(t, s, 0, 20, 100)
	if ran, err := s.Compact(); err != nil || ran {
		t.Fatalf("Compact below threshold: ran=%v err=%v", ran, err)
	}
	if err := s.Flush([]Entry{{ID: "rec-00002", Tombstone: true}}, 200, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush([]Entry{{ID: "rec-00004", Payload: []byte("new")}}, 300, nil); err != nil {
		t.Fatal(err)
	}
	ran, err := s.Compact()
	if err != nil || !ran {
		t.Fatalf("Compact at threshold: ran=%v err=%v", ran, err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.Tombstones != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if st.Entries != 19 { // 20 - 1 tombstoned
		t.Fatalf("post-compaction entries = %d, want 19", st.Entries)
	}
	if _, _, ok, _ := s.Get("rec-00002"); ok {
		t.Fatal("tombstoned id survived compaction")
	}
	if p, _, ok, _ := s.Get("rec-00004"); !ok || string(p) != "new" {
		t.Fatalf("rec-00004 after compaction: %q ok=%v", p, ok)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.sseg"))
	if len(files) != 1 {
		t.Fatalf("old segment files not deleted: %v", files)
	}
	// Reopen sanity.
	s.Close()
	s2 := mustOpen(t, dir, 3)
	if p, _, ok, _ := s2.Get("rec-00004"); !ok || string(p) != "new" {
		t.Fatalf("rec-00004 after compaction+reopen: %q ok=%v", p, ok)
	}
}

// TestStoreOrphanSweep: a segment file with no manifest entry — the
// crash-between-segment-and-manifest window — is deleted at Open, and
// its sequence number is never reused.
func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	flushN(t, s, 0, 5, 100)
	// Simulate the crash window: write a valid segment file the manifest
	// does not know about, plus temp litter.
	orphan := filepath.Join(dir, segName(99))
	if err := WriteFile(orphan, []Entry{{ID: "zzz", Payload: []byte("orphan")}}, nil); err != nil {
		t.Fatal(err)
	}
	litter := filepath.Join(dir, "MANIFEST.tmp-123")
	if err := os.WriteFile(litter, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, 0)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment survived Open")
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("temp litter survived Open")
	}
	if _, _, ok, _ := s2.Get("zzz"); ok {
		t.Fatal("orphan data visible after sweep")
	}
	// The swept orphan's sequence must not be reused.
	flushN(t, s2, 100, 1, 200)
	if _, err := os.Stat(filepath.Join(dir, segName(100))); err != nil {
		t.Fatalf("nextSeq did not advance past swept orphan: %v", err)
	}
}

// TestStoreFlushFailureRollsBack: an injected segment-write failure must
// leave the committed state (manifest, readers, LSN) untouched, and the
// next flush must succeed.
func TestStoreFlushFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	flushN(t, s, 0, 5, 100)
	s.SetWrapWriter(func(w io.Writer) io.Writer { return store.NewFailAfterWriter(w, 64) })
	err := s.Flush([]Entry{{ID: "zzz", Payload: bytes.Repeat([]byte("x"), 256)}}, 200, nil)
	if !errors.Is(err, store.ErrInjectedWrite) {
		t.Fatalf("Flush with failing writer: %v", err)
	}
	if s.LSN() != 100 {
		t.Fatalf("failed flush advanced LSN to %d", s.LSN())
	}
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("failed flush changed segment set: %+v", st)
	}
	s.SetWrapWriter(nil)
	if err := s.Flush([]Entry{{ID: "zzz", Payload: []byte("ok")}}, 200, nil); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if p, _, ok, _ := s.Get("zzz"); !ok || string(p) != "ok" {
		t.Fatalf("post-recovery read: %q ok=%v", p, ok)
	}
}

// TestCrashCutManifestEveryOffset truncates the MANIFEST at every byte
// offset: Open must fail with ErrCorrupt (or treat 0 bytes as damage
// too — an empty MANIFEST is not a missing one).
func TestCrashCutManifestEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	flushN(t, s, 0, 3, 100)
	s.Close()
	manPath := filepath.Join(dir, ManifestFileName)
	whole, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(whole); cut++ {
		if err := os.WriteFile(manPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, nil, 0)
		if err == nil {
			s2.Close()
			t.Fatalf("manifest cut at %d/%d bytes opened successfully", cut, len(whole))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("manifest cut at %d: err=%v, want ErrCorrupt", cut, err)
		}
	}
	// Control: restore and reopen.
	if err := os.WriteFile(manPath, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, nil, 0)
	if err != nil {
		t.Fatalf("control: restored manifest rejected: %v", err)
	}
	s3.Close()
}

// TestStoreManifestNamesMissingSegment: a manifest referencing a segment
// file that does not exist (deleted out-of-band) must fail the open, not
// silently serve a partial database.
func TestStoreManifestNamesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	flushN(t, s, 0, 3, 100)
	s.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.sseg"))
	if len(files) != 1 {
		t.Fatalf("expected 1 segment, have %v", files)
	}
	os.Remove(files[0])
	if _, err := Open(dir, nil, 0); err == nil {
		t.Fatal("Open succeeded with a manifest-named segment missing")
	}
}
