package segment

import (
	"bytes"
	"testing"
)

// TestCacheNoSliceSharing: the cache must hand out and retain private
// copies. Historically get returned the cached slice by reference, so a
// caller mutating its "own" payload corrupted every later hit on the
// same frame — with the residency subsystem faulting payloads through
// the cache on every cold read, that bug would silently corrupt
// records. Guard both directions: mutation of a returned payload, and
// mutation of the buffer that was passed to put.
func TestCacheNoSliceSharing(t *testing.T) {
	c := NewCache(1 << 20)
	key := cacheKey{path: "seg-0000000000000001.sseg", off: 64}
	orig := []byte("payload-original-bytes")

	// put must retain a private copy: scribbling on the caller's buffer
	// afterwards must not reach the cache.
	buf := append([]byte(nil), orig...)
	c.put(key, buf)
	for i := range buf {
		buf[i] = 0xEE
	}
	got, ok := c.get(key)
	if !ok {
		t.Fatal("get: entry missing after put")
	}
	if !bytes.Equal(got, orig) {
		t.Fatalf("cached payload shares put's buffer: got %q, want %q", got, orig)
	}

	// get must return a private copy: mutating one hit must not be
	// visible to the next.
	for i := range got {
		got[i] = 0xAA
	}
	again, ok := c.get(key)
	if !ok {
		t.Fatal("get: entry missing on second hit")
	}
	if !bytes.Equal(again, orig) {
		t.Fatalf("cache hit shares a previously returned slice: got %q, want %q", again, orig)
	}
}

// TestReaderGetMutationIsolated: the same guarantee end to end through
// Reader.Get — mutate a payload returned from a cache hit and verify a
// re-read still sees the on-disk bytes.
func TestReaderGetMutationIsolated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	want := []byte("immutable-frame-bytes")
	if err := s.Flush([]Entry{{ID: "rec-a", Payload: append([]byte(nil), want...)}}, 1, nil); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// First Get warms the cache, second hits it; mutate each in turn.
	for i := 0; i < 3; i++ {
		p, tomb, ok, err := s.Get("rec-a")
		if err != nil || !ok || tomb {
			t.Fatalf("Get #%d: (%v,%v,%v)", i, tomb, ok, err)
		}
		if !bytes.Equal(p, want) {
			t.Fatalf("Get #%d returned %q, want %q (earlier mutation leaked)", i, p, want)
		}
		for j := range p {
			p[j] = byte(i)
		}
	}
}
