package segment

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"seqrep/internal/store"
)

func testEntries(n int) []Entry {
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("seq-%05d", i)
		if i%7 == 3 {
			entries = append(entries, Entry{ID: id, Tombstone: true})
			continue
		}
		payload := bytes.Repeat([]byte{byte(i)}, 16+i%32)
		entries = append(entries, Entry{ID: id, Payload: payload})
	}
	return entries
}

func writeTestSegment(t *testing.T, n int) (string, []Entry) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg-0000000000000000.sseg")
	entries := testEntries(n)
	if err := WriteFile(path, entries, nil); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, entries
}

// TestSegmentRoundTrip: every entry written comes back byte-identical,
// tombstones resolve without payloads, absent ids miss cleanly.
func TestSegmentRoundTrip(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		var cache *Cache
		if withCache {
			cache = NewCache(1 << 20)
		}
		path, entries := writeTestSegment(t, 100)
		r, err := OpenReader(path, cache)
		if err != nil {
			t.Fatalf("OpenReader(cache=%v): %v", withCache, err)
		}
		defer r.Close()
		if r.Len() != len(entries) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(entries))
		}
		// Two passes so the cached path (second pass hits) is exercised.
		for pass := 0; pass < 2; pass++ {
			for _, e := range entries {
				p, tomb, ok, err := r.Get(e.ID)
				if err != nil || !ok {
					t.Fatalf("Get(%q) pass %d: ok=%v err=%v", e.ID, pass, ok, err)
				}
				if tomb != e.Tombstone {
					t.Fatalf("Get(%q): tombstone=%v, want %v", e.ID, tomb, e.Tombstone)
				}
				if !e.Tombstone && !bytes.Equal(p, e.Payload) {
					t.Fatalf("Get(%q): payload mismatch", e.ID)
				}
			}
		}
		if _, _, ok, err := r.Get("absent"); ok || err != nil {
			t.Fatalf("Get(absent): ok=%v err=%v", ok, err)
		}
		if withCache {
			if st := cache.Stats(); st.Hits == 0 || st.Entries == 0 {
				t.Fatalf("cache never hit: %+v", st)
			}
		}
	}
}

// TestSegmentWriteRejectsBadInput: unsorted, duplicate, and empty ids
// must be refused before anything lands on disk.
func TestSegmentWriteRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]Entry{
		"unsorted":  {{ID: "b", Payload: []byte("x")}, {ID: "a", Payload: []byte("y")}},
		"duplicate": {{ID: "a", Payload: []byte("x")}, {ID: "a", Payload: []byte("y")}},
		"empty id":  {{ID: "", Payload: []byte("x")}},
	}
	for name, entries := range cases {
		path := filepath.Join(dir, "bad.sseg")
		if err := WriteFile(path, entries, nil); err == nil {
			t.Errorf("%s: WriteFile accepted invalid entries", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: rejected write left a file behind", name)
		}
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(leftovers) != 0 {
		t.Fatalf("rejected writes left temp litter: %v", leftovers)
	}
}

// TestSegmentWriteFailureLeavesNoFile: an injected write failure must
// not commit the segment or leave temp litter — the atomic-rename
// protocol's whole point.
func TestSegmentWriteFailureLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-0000000000000000.sseg")
	entries := testEntries(50)
	wrap := func(w io.Writer) io.Writer { return store.NewFailAfterWriter(w, 200) }
	err := WriteFile(path, entries, wrap)
	if !errors.Is(err, store.ErrInjectedWrite) {
		t.Fatalf("WriteFile with failing writer: err=%v, want ErrInjectedWrite", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write committed a segment file")
	}
	names, _ := os.ReadDir(dir)
	if len(names) != 0 {
		t.Fatalf("failed write left litter: %v", names)
	}
}

// TestCrashCutSegmentEveryOffset truncates a segment file at every byte
// offset and verifies OpenReader either refuses cleanly (the common
// case) or — never — silently opens with wrong data. Mirrors the WAL's
// cut-at-every-offset suite: an immutable segment has no legal torn
// state, so every cut must surface as an error.
func TestCrashCutSegmentEveryOffset(t *testing.T) {
	path, _ := writeTestSegment(t, 20)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut < len(whole); cut++ {
		cutPath := filepath.Join(dir, "cut.sseg")
		if err := os.WriteFile(cutPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(cutPath, nil)
		if err == nil {
			r.Close()
			t.Fatalf("cut at %d/%d bytes opened successfully", cut, len(whole))
		}
	}
	// Control: the whole file opens.
	cutPath := filepath.Join(dir, "cut.sseg")
	if err := os.WriteFile(cutPath, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(cutPath, nil)
	if err != nil {
		t.Fatalf("control: whole file rejected: %v", err)
	}
	r.Close()
}

// TestCrashCutSegmentBitFlips flips one byte at a spread of offsets and
// verifies the damage is always detected — at open (header, index,
// bloom, trailer) or at first payload read (entry frames).
func TestCrashCutSegmentBitFlips(t *testing.T) {
	path, entries := writeTestSegment(t, 20)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for off := 0; off < len(whole); off += 7 {
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x40
		mutPath := filepath.Join(dir, "flip.sseg")
		if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(mutPath, nil)
		if err != nil {
			continue // detected at open: good
		}
		// Opened — every payload read must either succeed with the right
		// bytes or report corruption. A flipped bit in an entry frame is
		// caught by the frame CRC on first read.
		clean := true
		for _, e := range entries {
			p, tomb, ok, gerr := r.Get(e.ID)
			if gerr != nil {
				clean = false
				break
			}
			if !ok || tomb != e.Tombstone || (!e.Tombstone && !bytes.Equal(p, e.Payload)) {
				r.Close()
				t.Fatalf("flip at %d: wrong data served without error", off)
			}
		}
		r.Close()
		_ = clean
	}
}

// TestSegmentEmptyAndSingle: degenerate sizes survive the round trip.
func TestSegmentEmptyAndSingle(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{0, 1} {
		path := filepath.Join(dir, fmt.Sprintf("seg-%016x.sseg", n))
		entries := testEntries(n)
		if err := WriteFile(path, entries, nil); err != nil {
			t.Fatalf("WriteFile(n=%d): %v", n, err)
		}
		r, err := OpenReader(path, nil)
		if err != nil {
			t.Fatalf("OpenReader(n=%d): %v", n, err)
		}
		if r.Len() != n {
			t.Fatalf("Len = %d, want %d", r.Len(), n)
		}
		r.Close()
	}
}
