// Package resident is the residency subsystem that lets one node serve
// datasets larger than RAM: a byte-budgeted CLOCK tracker over record
// representation payloads. The engine keeps every record's id, feature
// vector and multiresolution sketch resident (candidate generation and
// the progressive sketch tier never touch disk) and registers the heavy
// representation payload here; when the tracked bytes exceed the budget
// the tracker sweeps its CLOCK ring and asks the engine — through the
// onEvict callback — to drop cold, clean payloads, which page back in
// from the on-disk segment tier on their next use.
//
// Correctness hinges on two rules the API encodes directly:
//
//   - Pinning. A dirty record (WAL-covered, not yet checkpointed) is
//     admitted pinned and never offered for eviction: the segment tier
//     does not hold its payload yet, so evicting it would drop the only
//     copy. The engine unpins it after the checkpoint's manifest commit
//     makes the segment copy durable.
//
//   - Identity. Entries carry a ref pointer (the record's own hot flag)
//     as an identity token: Unpin and Drop act only when the caller's
//     pointer matches the entry's, so a stale unpin or drop aimed at a
//     record that was removed and re-ingested under the same id cannot
//     touch the successor's entry.
package resident

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of the tracker for health and
// metrics reporting.
type Stats struct {
	// ResidentRecords is the number of payloads currently materialized.
	ResidentRecords int
	// ResidentBytes is their estimated footprint.
	ResidentBytes int64
	// MemoryBudget is the configured byte budget.
	MemoryBudget int64
	// Pinned counts resident payloads exempt from eviction (dirty
	// records whose only copy is in RAM plus the WAL).
	Pinned int
	// Evictions counts payloads evicted since boot.
	Evictions uint64
	// ColdHits counts payload misses served by paging from the segment
	// tier since boot.
	ColdHits uint64
}

// entry is one tracked payload on the CLOCK ring.
type entry struct {
	id    string
	bytes int64
	// ref is the CLOCK reference bit, shared with the owning record so
	// every touch of the payload (a query verification, a GetRecord)
	// grants a second chance without calling into the tracker. It
	// doubles as the entry's identity token.
	ref  *atomic.Bool
	pins int
	idx  int // position in the ring, maintained on swap-remove
}

// Tracker is the byte-budgeted CLOCK over resident payloads. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// tracker is the unlimited-budget, fully-resident mode).
type Tracker struct {
	budget int64
	// onEvict asks the owner to release id's payload; ref is the entry's
	// identity token, so the owner can verify it still names the same
	// record. It returns true when the entry should be forgotten (payload
	// dropped, or the record no longer exists); false leaves the entry in
	// place for the next sweep. Called with the tracker's lock held: the
	// callback must not call back into the tracker.
	onEvict func(id string, ref *atomic.Bool) bool

	mu        sync.Mutex
	entries   map[string]*entry
	ring      []*entry
	hand      int
	bytes     int64
	pinned    int
	evictions atomic.Uint64
	coldHits  atomic.Uint64
}

// New creates a tracker enforcing budget bytes. budget must be > 0 (the
// caller models "unlimited" as a nil *Tracker). onEvict is the owner's
// release callback; see Tracker.onEvict.
func New(budget int64, onEvict func(id string, ref *atomic.Bool) bool) *Tracker {
	return &Tracker{
		budget:  budget,
		onEvict: onEvict,
		entries: make(map[string]*entry),
	}
}

// Admit registers (or re-registers) id's payload as resident, costing
// bytes against the budget, with ref as the entry's CLOCK bit and
// identity token. pin admits the entry pinned (one pin count) in the
// same critical section, so a dirty record can never be selected for
// eviction between its admit and its pin. Admitting an id whose entry
// carries a different ref replaces the stale entry (the record was
// removed and re-ingested); re-admitting with the same ref refreshes
// the byte cost and adds the pin if requested. Over-budget admits
// trigger an eviction sweep before returning.
func (t *Tracker) Admit(id string, bytes int64, ref *atomic.Bool, pin bool) {
	if t == nil {
		return
	}
	ref.Store(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	if e != nil && e.ref != ref {
		// Stale entry from a removed predecessor under the same id.
		t.removeLocked(e)
		e = nil
	}
	if e == nil {
		e = &entry{id: id, bytes: bytes, ref: ref, idx: len(t.ring)}
		t.entries[id] = e
		t.ring = append(t.ring, e)
		t.bytes += bytes
	} else {
		t.bytes += bytes - e.bytes
		e.bytes = bytes
	}
	if pin {
		if e.pins == 0 {
			t.pinned++
		}
		e.pins++
	}
	t.sweepLocked()
}

// Unpin releases one pin on id's entry, provided ref matches the entry's
// identity. The freed entry becomes evictable on the next sweep, which
// runs immediately if the tracker is over budget.
func (t *Tracker) Unpin(id string, ref *atomic.Bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	if e == nil || e.ref != ref || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		t.pinned--
	}
	t.sweepLocked()
}

// Drop forgets id's entry (the record was removed), provided ref matches
// the entry's identity.
func (t *Tracker) Drop(id string, ref *atomic.Bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	if e == nil || e.ref != ref {
		return
	}
	t.removeLocked(e)
}

// ColdHit counts one payload miss served by paging from the segment
// tier.
func (t *Tracker) ColdHit() {
	if t == nil {
		return
	}
	t.coldHits.Add(1)
}

// Stats snapshots the tracker's counters.
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		ResidentRecords: len(t.ring),
		ResidentBytes:   t.bytes,
		MemoryBudget:    t.budget,
		Pinned:          t.pinned,
		Evictions:       t.evictions.Load(),
		ColdHits:        t.coldHits.Load(),
	}
}

// removeLocked unlinks e from the ring and map and refunds its bytes.
func (t *Tracker) removeLocked(e *entry) {
	last := len(t.ring) - 1
	moved := t.ring[last]
	t.ring[e.idx] = moved
	moved.idx = e.idx
	t.ring = t.ring[:last]
	if t.hand > last-1 {
		t.hand = 0
	}
	delete(t.entries, e.id)
	t.bytes -= e.bytes
	if e.pins > 0 {
		t.pinned--
	}
}

// sweepLocked runs the CLOCK hand until the tracker is back under
// budget or two full revolutions found nothing evictable (everything
// pinned or freshly referenced — staying over budget is then correct:
// the budget bounds cold capacity, it never drops a payload whose only
// copy is in RAM).
func (t *Tracker) sweepLocked() {
	steps := 2 * len(t.ring)
	for t.bytes > t.budget && len(t.ring) > 0 && steps > 0 {
		steps--
		if t.hand >= len(t.ring) {
			t.hand = 0
		}
		e := t.ring[t.hand]
		if e.pins > 0 {
			t.hand++
			continue
		}
		if e.ref.Swap(false) {
			// Referenced since the last pass: second chance.
			t.hand++
			continue
		}
		if t.onEvict(e.id, e.ref) {
			t.removeLocked(e)
			t.evictions.Add(1)
			// The swapped-in tail entry now sits under the hand; do not
			// advance, it deserves inspection too.
			continue
		}
		t.hand++
	}
}
