package resident

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// evictLog collects eviction callbacks and releases payloads by flag.
type evictLog struct {
	mu      sync.Mutex
	evicted []string
}

func (l *evictLog) cb(id string, _ *atomic.Bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evicted = append(l.evicted, id)
	return true
}

func TestTrackerEvictsUnderBudget(t *testing.T) {
	var log evictLog
	tr := New(100, log.cb)
	refs := make([]*atomic.Bool, 5)
	for i := range refs {
		refs[i] = new(atomic.Bool)
		tr.Admit(fmt.Sprintf("r%d", i), 40, refs[i], false)
	}
	st := tr.Stats()
	if st.ResidentBytes > 100 {
		t.Fatalf("resident bytes %d exceed budget 100", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded despite 200 admitted bytes under a 100-byte budget")
	}
	if got := st.ResidentRecords; got > 2 {
		t.Fatalf("resident records = %d, want <= 2 under budget", got)
	}
}

func TestTrackerPinsSurviveSweep(t *testing.T) {
	var log evictLog
	tr := New(50, log.cb)
	pinned := new(atomic.Bool)
	tr.Admit("dirty", 40, pinned, true)
	for i := 0; i < 5; i++ {
		tr.Admit(fmt.Sprintf("clean%d", i), 40, new(atomic.Bool), false)
	}
	log.mu.Lock()
	for _, id := range log.evicted {
		if id == "dirty" {
			t.Fatalf("pinned entry was offered for eviction")
		}
	}
	log.mu.Unlock()
	st := tr.Stats()
	if st.Pinned != 1 {
		t.Fatalf("pinned = %d, want 1", st.Pinned)
	}

	// After unpinning, a further over-budget admit may evict it.
	tr.Unpin("dirty", pinned)
	if st := tr.Stats(); st.Pinned != 0 {
		t.Fatalf("pinned = %d after unpin, want 0", st.Pinned)
	}
}

func TestTrackerRefIdentity(t *testing.T) {
	var log evictLog
	tr := New(1000, log.cb)
	oldRef := new(atomic.Bool)
	tr.Admit("id", 10, oldRef, true)

	// Re-ingest under the same id with a new identity: the successor's
	// admit replaces the stale entry.
	newRef := new(atomic.Bool)
	tr.Admit("id", 20, newRef, true)
	if st := tr.Stats(); st.ResidentBytes != 20 || st.ResidentRecords != 1 {
		t.Fatalf("after replace: bytes=%d records=%d, want 20/1", st.ResidentBytes, st.ResidentRecords)
	}

	// A stale unpin or drop aimed at the predecessor must not touch the
	// successor's entry.
	tr.Unpin("id", oldRef)
	tr.Drop("id", oldRef)
	st := tr.Stats()
	if st.ResidentRecords != 1 || st.Pinned != 1 {
		t.Fatalf("stale unpin/drop touched successor: records=%d pinned=%d", st.ResidentRecords, st.Pinned)
	}

	// The matching drop works.
	tr.Drop("id", newRef)
	if st := tr.Stats(); st.ResidentRecords != 0 || st.ResidentBytes != 0 || st.Pinned != 0 {
		t.Fatalf("after matching drop: %+v", st)
	}
}

func TestTrackerSecondChance(t *testing.T) {
	var log evictLog
	tr := New(100, log.cb)
	hotRef := new(atomic.Bool)
	tr.Admit("hot", 40, hotRef, false)
	coldRef := new(atomic.Bool)
	tr.Admit("cold", 40, coldRef, false)

	// Both ref bits are set by Admit; clear cold's and touch hot's so the
	// sweep prefers cold.
	coldRef.Store(false)
	hotRef.Store(true)

	tr.Admit("new", 40, new(atomic.Bool), false)
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.evicted) == 0 {
		t.Fatalf("no eviction despite over-budget admit")
	}
	if log.evicted[0] != "cold" {
		t.Fatalf("first eviction = %q, want the unreferenced entry %q", log.evicted[0], "cold")
	}
}

func TestTrackerOnEvictRefusal(t *testing.T) {
	// An onEvict returning false keeps the entry; the tracker stays over
	// budget rather than looping forever.
	tr := New(10, func(string, *atomic.Bool) bool { return false })
	tr.Admit("a", 20, new(atomic.Bool), false)
	tr.Admit("b", 20, new(atomic.Bool), false)
	st := tr.Stats()
	if st.ResidentRecords != 2 {
		t.Fatalf("refused evictions should keep entries: records=%d", st.ResidentRecords)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions=%d, want 0 when every callback refuses", st.Evictions)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	ref := new(atomic.Bool)
	tr.Admit("x", 1, ref, true)
	tr.Unpin("x", ref)
	tr.Drop("x", ref)
	tr.ColdHit()
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracker stats = %+v, want zero", st)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	var released atomic.Int64
	tr := New(1<<12, func(id string, _ *atomic.Bool) bool {
		released.Add(1)
		return true
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				ref := new(atomic.Bool)
				tr.Admit(id, 64, ref, i%3 == 0)
				if i%3 == 0 {
					tr.Unpin(id, ref)
				}
				if i%5 == 0 {
					tr.Drop(id, ref)
				}
				tr.ColdHit()
			}
		}(w)
	}
	wg.Wait()
	st := tr.Stats()
	if st.ResidentBytes > 1<<12 {
		t.Fatalf("resident bytes %d exceed budget after churn", st.ResidentBytes)
	}
	if st.Pinned != 0 {
		t.Fatalf("pinned = %d after balanced pin/unpin churn", st.Pinned)
	}
}
