package querylang

import (
	"strings"
	"testing"

	"seqrep/internal/core"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// testDB builds a small database with the fever family.
func testDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.New(core.Config{Archive: store.NewMemArchive()})
	if err != nil {
		t.Fatal(err)
	}
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	three, err := synth.ThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("two", fever); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("three", three); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("shifted", fever.ShiftValue(2)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLexer(t *testing.T) {
	toks, err := lex(`MATCH PATTERN "UF*D" 135 +- 2.5 ± ecg-001 'single'`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokWord, tokWord, tokString, tokNumber, tokPlusMinus, tokNumber, tokPlusMinus, tokWord, tokString, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v (%q), want %v", i, toks[i].kind, toks[i].text, k)
		}
	}
	if toks[7].text != "ecg-001" {
		t.Errorf("dashed identifier: %q", toks[7].text)
	}
	if toks[5].text != "2.5" {
		t.Errorf("decimal: %q", toks[5].text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'also`, `@`, `#x`} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) accepted", src)
		}
	}
}

func TestLexerNegativeNumber(t *testing.T) {
	toks, err := lex(`-3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "-3.5" {
		t.Errorf("token = %+v", toks[0])
	}
	if _, err := lex(`-`); err == nil {
		t.Error("lone dash accepted")
	}
}

func TestParseCanonicalForms(t *testing.T) {
	cases := map[string]string{
		`MATCH PATTERN "UF*D"`:                      `MATCH PATTERN "UF*D"`,
		`match pattern 'UF*D'`:                      `MATCH PATTERN "UF*D"`,
		`FIND PATTERN "U+D+"`:                       `FIND PATTERN "U+D+"`,
		`MATCH PEAKS 2`:                             `MATCH PEAKS 2`,
		`MATCH PEAKS = 2 TOLERANCE 1`:               `MATCH PEAKS 2 TOLERANCE 1`,
		`MATCH INTERVAL 135 +- 2`:                   `MATCH INTERVAL 135 +- 2`,
		`MATCH INTERVAL 135 ± 2`:                    `MATCH INTERVAL 135 +- 2`,
		`MATCH INTERVAL 135`:                        `MATCH INTERVAL 135 +- 0`,
		`MATCH VALUE LIKE ecg1 EPS 0.5`:             `MATCH VALUE LIKE ecg1 EPS 0.5`,
		`MATCH VALUE LIKE ecg1`:                     `MATCH VALUE LIKE ecg1`,
		`MATCH SHAPE LIKE x PEAKS 1 HEIGHT 0.2`:     `MATCH SHAPE LIKE x PEAKS 1 HEIGHT 0.2`,
		`MATCH SHAPE LIKE x SPACING 0.3 HEIGHT 1`:   `MATCH SHAPE LIKE x HEIGHT 1 SPACING 0.3`,
		`MATCH SHAPE LIKE "quoted id" SPACING 0.1`:  `MATCH SHAPE LIKE "quoted id" SPACING 0.1`,
		`MATCH DISTANCE LIKE ecg1`:                  `MATCH DISTANCE LIKE ecg1 METRIC l2`,
		`match distance like ecg1 metric zl2 eps 3`: `MATCH DISTANCE LIKE ecg1 METRIC zl2 EPS 3`,
		`EXPLAIN MATCH PEAKS 2`:                     `EXPLAIN MATCH PEAKS 2`,
		`explain explain match peaks 2`:             `EXPLAIN MATCH PEAKS 2`,
		`EXPLAIN MATCH DISTANCE LIKE "value"`:       `EXPLAIN MATCH DISTANCE LIKE "value" METRIC l2`,
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := q.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT * FROM t`,
		`MATCH`,
		`MATCH PATTERN`,
		`MATCH PATTERN UF*D`, // unquoted pattern
		`MATCH PEAKS`,
		`MATCH PEAKS two`,
		`MATCH PEAKS 2.5`,
		`MATCH PEAKS -1`,
		`MATCH PEAKS 2 TOLERANCE`,
		`MATCH PEAKS 2 TOLERANCE -1`,
		`MATCH PEAKS 2 TOLERANCE 0.5`,
		`MATCH INTERVAL`,
		`MATCH INTERVAL 135 +-`,
		`MATCH VALUE`,
		`MATCH VALUE LIKE`,
		`MATCH VALUE LIKE id EPS`,
		`MATCH SHAPE LIKE`,
		`MATCH SHAPE LIKE id PEAKS 0.5`,
		`MATCH SHAPE LIKE id HEIGHT`,
		`FIND`,
		`FIND PATTERN`,
		`MATCH PEAKS 2 garbage`,
		`MATCH PATTERN "x" extra`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestExecPattern(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `MATCH PATTERN "[FD]*(U+F*D[FD]*)(U+F*D[FD]*)(U+F*)?"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "pattern" {
		t.Errorf("Kind = %q", res.Kind)
	}
	if len(res.IDs) != 2 { // two + shifted
		t.Errorf("IDs = %v", res.IDs)
	}
}

func TestExecFind(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `FIND PATTERN "U+F*D"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "find" {
		t.Errorf("Kind = %q", res.Kind)
	}
	if len(res.IDs) != 3 {
		t.Errorf("IDs = %v", res.IDs)
	}
	// two peaks on "two"/"shifted", three on "three" → 7 hits total.
	if len(res.Hits) != 7 {
		t.Errorf("Hits = %d", len(res.Hits))
	}
}

func TestExecPeaks(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "peaks" || len(res.IDs) != 2 {
		t.Errorf("result %+v", res)
	}
	res, err = Exec(db, `MATCH PEAKS 2 TOLERANCE 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 {
		t.Errorf("with tolerance: %v", res.IDs)
	}
	if len(res.Matches) != 3 {
		t.Errorf("Matches = %d", len(res.Matches))
	}
}

func TestExecInterval(t *testing.T) {
	db := testDB(t)
	// Fever peaks at 8h/16h → interval 8.
	res, err := Exec(db, `MATCH INTERVAL 8 +- 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "interval" || len(res.IDs) < 2 {
		t.Errorf("result IDs %v", res.IDs)
	}
	if len(res.Intervals) != len(res.IDs) {
		t.Errorf("Intervals = %d for %d IDs", len(res.Intervals), len(res.IDs))
	}
}

func TestExecValue(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `MATCH VALUE LIKE two EPS 0.1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "value" || len(res.IDs) != 1 || res.IDs[0] != "two" {
		t.Errorf("result %+v", res)
	}
	// Default EPS comes from the database config (0.5): still only "two"
	// (the shifted copy is 2 degrees away).
	res, err = Exec(db, `MATCH VALUE LIKE two`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Errorf("default eps: %v", res.IDs)
	}
	if _, err := Exec(db, `MATCH VALUE LIKE missing`); err == nil {
		t.Error("missing exemplar accepted")
	}
}

func TestExecShape(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `MATCH SHAPE LIKE two HEIGHT 0.25 SPACING 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "shape" {
		t.Errorf("Kind = %q", res.Kind)
	}
	got := map[string]bool{}
	for _, id := range res.IDs {
		got[id] = true
	}
	if !got["two"] || !got["shifted"] || got["three"] {
		t.Errorf("shape IDs = %v", res.IDs)
	}
}

// Without an archive the exemplar loads from the representation.
func TestExecShapeWithoutArchive(t *testing.T) {
	db, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("two", fever); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, `MATCH SHAPE LIKE two HEIGHT 0.3 SPACING 0.3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Errorf("IDs = %v", res.IDs)
	}
}

func TestExecDistance(t *testing.T) {
	db := testDB(t)
	// "shifted" is the fever curve moved up 2 degrees: L2 ≈ 2·√97 ≈ 19.7.
	res, err := Exec(db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "distance" || len(res.IDs) != 2 {
		t.Errorf("result %+v", res)
	}
	if res.Stats == nil || res.Stats.Plan != "index" {
		t.Errorf("Stats = %+v, want index plan", res.Stats)
	}
	// Under zl2 the vertical shift vanishes: "shifted" is distance ~0.
	res, err = Exec(db, `MATCH DISTANCE LIKE two METRIC zl2 EPS 0.001`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Errorf("zl2 IDs = %v", res.IDs)
	}
	// Scan-only metric still answers, with the scan plan.
	res, err = Exec(db, `MATCH DISTANCE LIKE two METRIC linf EPS 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Plan != "scan" {
		t.Errorf("linf Stats = %+v, want scan plan", res.Stats)
	}
	if _, err := Exec(db, `MATCH DISTANCE LIKE two METRIC bogus`); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := Exec(db, `MATCH DISTANCE LIKE missing`); err == nil {
		t.Error("missing exemplar accepted")
	}
}

func TestExecExplain(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `EXPLAIN MATCH VALUE LIKE two EPS 0.1`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explain || res.Stats == nil {
		t.Fatalf("EXPLAIN result: %+v", res)
	}
	if res.Stats.Plan != "index" || res.Stats.Query != "value" {
		t.Errorf("Stats = %+v", res.Stats)
	}
	if len(res.IDs) != 1 { // EXPLAIN still runs the statement
		t.Errorf("IDs = %v", res.IDs)
	}
	// Fixed-path statements synthesize their access path.
	res, err = Exec(db, `EXPLAIN MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Plan != "record-scan" {
		t.Errorf("peaks Stats = %+v", res.Stats)
	}
	res, err = Exec(db, `EXPLAIN MATCH INTERVAL 8 +- 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Plan != "inverted-index" {
		t.Errorf("interval Stats = %+v", res.Stats)
	}
}

func TestExecBadQuery(t *testing.T) {
	db := testDB(t)
	if _, err := Exec(db, `MATCH PATTERN "("`); err == nil {
		t.Error("bad pattern accepted at run time")
	}
	if _, err := Exec(db, `nonsense`); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := Exec(db, `MATCH INTERVAL 135 +- -1`); err == nil {
		t.Error("negative interval tolerance accepted")
	}
}

func TestQueryStringsRoundTrip(t *testing.T) {
	// Canonical forms parse back to themselves.
	for _, src := range []string{
		`MATCH PATTERN "UF*D"`,
		`FIND PATTERN "U+"`,
		`MATCH PEAKS 3 TOLERANCE 2`,
		`MATCH INTERVAL 135 +- 2`,
		`MATCH VALUE LIKE id EPS 1`,
		`MATCH SHAPE LIKE id PEAKS 1 HEIGHT 0.5 SPACING 0.25`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	db := testDB(t)
	for _, src := range []string{
		`match peaks 2`,
		`Match Peaks 2`,
		`MATCH peaks 2`,
	} {
		res, err := Exec(db, src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(res.IDs) != 2 {
			t.Errorf("%q: IDs %v", src, res.IDs)
		}
	}
}

func TestResultIDsSortedForFind(t *testing.T) {
	db := testDB(t)
	res, err := Exec(db, `FIND PATTERN "U"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.Join(res.IDs, ","), "shifted") {
		t.Errorf("IDs not sorted: %v", res.IDs)
	}
}
