package querylang

import (
	"math/rand"
	"strings"
	"testing"
)

// Parse must never panic, whatever garbage arrives.
func TestParseRobustToRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	alphabet := `MATCHFINDPEAKSINTERVALVALUESHAPELIKE "'+-±0123456789. (){}`
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		// Must not panic; errors are expected and fine.
		_, _ = Parse(b.String()) //nolint:errcheck
	}
}

// Keyword fragments and truncations of valid statements never panic and
// never silently succeed when structurally incomplete.
func TestParseTruncationsOfValidStatements(t *testing.T) {
	full := []string{
		`MATCH PATTERN "UF*D(F|D)*UF*D"`,
		`MATCH PEAKS 2 TOLERANCE 1`,
		`MATCH INTERVAL 135 +- 2`,
		`MATCH SHAPE LIKE exemplar PEAKS 1 HEIGHT 0.25 SPACING 0.3`,
	}
	for _, src := range full {
		for cut := 0; cut < len(src); cut++ {
			prefix := src[:cut]
			q, err := Parse(prefix)
			if err != nil {
				continue
			}
			// A successfully parsed prefix must be a complete statement in
			// its own right: re-rendering and re-parsing must agree.
			q2, err := Parse(q.String())
			if err != nil {
				t.Errorf("prefix %q parsed but canonical form %q does not: %v", prefix, q.String(), err)
				continue
			}
			if q2.String() != q.String() {
				t.Errorf("prefix %q: unstable canonical form", prefix)
			}
		}
	}
}
