package querylang

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"seqrep/internal/core"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// Database is the engine surface the language executes against; *core.DB
// satisfies it. Defined as an interface so the language can be tested with
// fakes and reused over facades. The similarity queries are exposed in
// their streaming, context-first form — the language's materialized
// statements collect and sort, its streamed statements pass the caller's
// yield through.
type Database interface {
	MatchPattern(pattern string) ([]string, error)
	SearchPattern(pattern string) ([]core.PatternHit, error)
	PeakCount(k, tol int) ([]core.Match, error)
	IntervalQuery(n, eps float64) ([]core.IntervalMatch, error)
	ValueQueryStream(ctx context.Context, exemplar seq.Sequence, eps float64, opts core.QueryOptions, yield func(core.Match) bool) (core.QueryStats, error)
	DistanceQueryStream(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts core.QueryOptions, yield func(core.Match) bool) (core.QueryStats, error)
	ShapeQueryStream(ctx context.Context, exemplar seq.Sequence, tol core.ShapeTolerance, opts core.QueryOptions, yield func(core.Match) bool) (core.QueryStats, error)
	Raw(id string) (seq.Sequence, error)
	Reconstruct(id string) (seq.Sequence, error)
	Config() core.Config
}

var _ Database = (*core.DB)(nil)

// ProgressiveDatabase is the optional engine surface behind the
// WITHIN ERROR / APPROX clauses: coarse-to-fine execution delivering
// per-record error bands that only tighten (see core/progressive.go).
// It is a separate interface so Database fakes without a progressive
// engine keep compiling; statements carrying a progressive clause fail
// with a clear error against a plain Database.
type ProgressiveDatabase interface {
	Database
	ValueQueryProgressive(ctx context.Context, exemplar seq.Sequence, eps float64, opts core.QueryOptions, yield func(core.ProgressiveMatch) bool) (core.QueryStats, error)
	DistanceQueryProgressive(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts core.QueryOptions, yield func(core.ProgressiveMatch) bool) (core.QueryStats, error)
}

var _ ProgressiveDatabase = (*core.DB)(nil)

// progressiveDB narrows a Database to its progressive surface.
func progressiveDB(db Database) (ProgressiveDatabase, error) {
	pd, ok := db.(ProgressiveDatabase)
	if !ok {
		return nil, fmt.Errorf("querylang: database does not support progressive answers (WITHIN ERROR / APPROX)")
	}
	return pd, nil
}

// Result is the uniform answer of every query kind: the distinct matching
// ids plus the kind-specific detail.
type Result struct {
	Kind      string // "pattern", "find", "peaks", "interval", "value", "distance", "shape"
	IDs       []string
	Matches   []core.Match         // peaks / value / distance / shape queries
	Hits      []core.PatternHit    // FIND queries
	Intervals []core.IntervalMatch // interval queries
	// Stats reports the execution plan for planner-routed statements
	// (MATCH VALUE, MATCH DISTANCE, MATCH SHAPE) and for every EXPLAIN'ed
	// statement. Stats.Truncated marks an answer a LIMIT or TOP bound cut
	// short.
	Stats *core.QueryStats
	// Explain marks a statement run under EXPLAIN: Stats is then always
	// set, synthesized for query kinds with a fixed access path.
	Explain bool
	// Dropped counts materialized results a LIMIT clause discarded, when
	// that number is known exactly (the fixed-path kinds, which compute
	// the full answer before truncating). Streamed kinds stop early
	// instead and report Stats.Truncated without a count.
	Dropped int
}

// Exec parses and runs src against db in one call, without cancellation
// (see ExecContext).
func Exec(db Database, src string) (*Result, error) {
	return ExecContext(context.Background(), db, src)
}

// ExecContext parses and runs one statement under ctx: the similarity
// statements (MATCH VALUE / DISTANCE / SHAPE) stop at the context's
// cancellation or deadline and return ctx.Err().
func ExecContext(ctx context.Context, db Database, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Run(ctx, db)
}

// Canonical parses src and returns its canonical rendering: the one
// spelling every equivalent statement normalizes to (keyword casing,
// default clauses, quoting, bound-clause order). Two statements with
// equal canonical forms execute identically, which makes the canonical
// form a sound cache key for query results — the property the fuzzer's
// parse → print → reparse round trip pins. EXPLAIN and the LIMIT /
// TOP n BY DISTANCE bounds are part of the form: a bounded statement
// answers differently and canonicalizes differently.
func Canonical(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// StreamFunc receives one similarity match at a time from a streamed
// statement. Calls are serialized but may arrive on any goroutine;
// returning false stops the statement early without error.
type StreamFunc func(m core.Match) bool

// Streamer is implemented by statements whose matches can be produced
// incrementally (the similarity statements, their bounded forms, and
// EXPLAIN wrappers around them). RunStream yields every match through
// yield instead of materializing it; the returned Result carries the
// kind, stats and EXPLAIN flag with Matches and IDs left empty.
type Streamer interface {
	RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error)
}

// RunStream executes q with incremental match delivery: statements that
// implement Streamer yield each match as the engine verifies it; all
// other statements materialize normally, then deliver their matches (if
// the kind has any) through yield for a uniform consumption model. In
// both cases the returned Result has Matches and IDs stripped — matches
// travelled through yield — while kind-specific payloads without a
// streamed form (pattern ids, FIND hits, interval matches) stay on the
// Result.
func RunStream(ctx context.Context, db Database, q Query, yield StreamFunc) (*Result, error) {
	if st, ok := q.(Streamer); ok {
		return st.RunStream(ctx, db, yield)
	}
	res, err := q.Run(ctx, db)
	if err != nil {
		return nil, err
	}
	return drainMatches(res, yield), nil
}

// ProgressiveFunc receives one progressive refinement frame at a time:
// sketch-tier bands first, then candidate-tier tightenings, then final
// verdicts (Final set; Match set on accepts). Calls are serialized but
// may arrive on any goroutine; returning false stops the query early
// without error.
type ProgressiveFunc func(core.ProgressiveMatch) bool

// IsProgressive reports whether q carries a WITHIN ERROR or APPROX
// clause (through any EXPLAIN / bound wrappers) and so answers through
// the progressive cascade. Progressive and exact spellings of the same
// MATCH body canonicalize differently, keeping canonical-form caches
// sound.
func IsProgressive(q Query) bool {
	switch t := q.(type) {
	case *ExplainQuery:
		return IsProgressive(t.Inner)
	case *BoundedQuery:
		return IsProgressive(t.Inner)
	case *ValueQuery:
		return t.progressive()
	case *DistanceQuery:
		return t.progressive()
	}
	return false
}

// RunProgressive executes a progressive statement with frame-level
// delivery: every refinement frame — not just final matches — flows
// through yield, tagged with its quality tier. Only statements
// IsProgressive reports true for qualify; everything else errors. The
// returned Result carries kind, stats and the EXPLAIN flag with Matches
// and IDs left empty (matches travelled through yield inside their
// final frames).
func RunProgressive(ctx context.Context, db Database, q Query, yield ProgressiveFunc) (*Result, error) {
	switch t := q.(type) {
	case *ExplainQuery:
		res, err := RunProgressive(ctx, db, t.Inner, yield)
		if err != nil {
			return nil, err
		}
		return explain(res), nil
	case *BoundedQuery:
		return runProgressiveInner(ctx, db, t.Inner, t.opts(), yield)
	default:
		return runProgressiveInner(ctx, db, q, core.QueryOptions{}, yield)
	}
}

func runProgressiveInner(ctx context.Context, db Database, q Query, opts core.QueryOptions, yield ProgressiveFunc) (*Result, error) {
	switch t := q.(type) {
	case *ValueQuery:
		if t.progressive() {
			return t.streamProgressive(ctx, db, opts, yield)
		}
	case *DistanceQuery:
		if t.progressive() {
			return t.streamProgressive(ctx, db, opts, yield)
		}
	}
	return nil, fmt.Errorf("querylang: statement %q is not progressive (no WITHIN ERROR or APPROX clause)", q.String())
}

// progressiveOpts folds a statement's quality clauses into the engine
// options: WITHIN ERROR sets the acceptance band width, APPROX caps the
// cascade depth.
func progressiveOpts(opts core.QueryOptions, maxErr float64, approx string) core.QueryOptions {
	if maxErr > 0 {
		opts.MaxError = maxErr
	}
	if approx != "" {
		t, err := core.ParseTier(approx)
		if err == nil {
			opts.MaxTier = t
		}
	}
	return opts
}

// drainMatches pushes a materialized result's matches through yield and
// strips them (and the ids mirroring them) from the result. The match
// count is preserved in Stats before the strip — an EXPLAIN wrapper (or
// the stream trailer) synthesizing stats afterwards would otherwise see
// an empty result and report matches=0 for frames it just delivered.
func drainMatches(res *Result, yield StreamFunc) *Result {
	for _, m := range res.Matches {
		if !yield(m) {
			break
		}
	}
	if len(res.Matches) > 0 {
		if res.Stats == nil {
			res.Stats = &core.QueryStats{
				Query:   res.Kind,
				Plan:    fixedPlans[res.Kind],
				Matches: len(res.Matches),
			}
		} else if res.Stats.Matches == 0 {
			res.Stats.Matches = len(res.Matches)
		}
		res.Matches, res.IDs = nil, nil
	}
	return res
}

// WithLimit caps q's result count at n (a server-side guard rail): a
// statement without its own LIMIT gains one, a statement with a looser
// LIMIT is tightened, a tighter LIMIT wins. n <= 0 returns q unchanged.
// The wrapper is inserted inside any EXPLAIN so the canonical structure
// (EXPLAIN outermost, bounds innermost) is preserved; note the returned
// query's String() differs from the original statement's, so cache keys
// must be computed before applying the cap.
func WithLimit(q Query, n int) Query {
	if n <= 0 {
		return q
	}
	switch t := q.(type) {
	case *ExplainQuery:
		return &ExplainQuery{Inner: WithLimit(t.Inner, n)}
	case *BoundedQuery:
		if t.Limit > 0 && t.Limit <= n {
			return t
		}
		nb := *t
		nb.Limit = n
		return &nb
	default:
		return &BoundedQuery{Inner: q, Limit: n}
	}
}

// MatchPatternQuery is MATCH PATTERN "...": whole symbol strings matching
// a slope-sign regular expression.
type MatchPatternQuery struct {
	Pattern string
}

// String implements Query.
func (q *MatchPatternQuery) String() string { return "MATCH PATTERN " + quoteString(q.Pattern) }

// Run implements Query.
func (q *MatchPatternQuery) Run(ctx context.Context, db Database) (*Result, error) {
	ids, err := db.MatchPattern(q.Pattern)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "pattern", IDs: ids}, nil
}

// FindPatternQuery is FIND PATTERN "...": occurrences anywhere within each
// sequence.
type FindPatternQuery struct {
	Pattern string
}

// String implements Query.
func (q *FindPatternQuery) String() string { return "FIND PATTERN " + quoteString(q.Pattern) }

// Run implements Query.
func (q *FindPatternQuery) Run(ctx context.Context, db Database) (*Result, error) {
	hits, err := db.SearchPattern(q.Pattern)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "find", IDs: distinctHitIDs(hits), Hits: hits}, nil
}

// PeaksQuery is MATCH PEAKS k [TOLERANCE t].
type PeaksQuery struct {
	Count     int
	Tolerance int
}

// String implements Query.
func (q *PeaksQuery) String() string {
	if q.Tolerance > 0 {
		return fmt.Sprintf("MATCH PEAKS %d TOLERANCE %d", q.Count, q.Tolerance)
	}
	return fmt.Sprintf("MATCH PEAKS %d", q.Count)
}

// Run implements Query.
func (q *PeaksQuery) Run(ctx context.Context, db Database) (*Result, error) {
	matches, err := db.PeakCount(q.Count, q.Tolerance)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "peaks", IDs: matchIDs(matches), Matches: matches}, nil
}

// IntervalQuery is MATCH INTERVAL n [+- eps].
type IntervalQuery struct {
	N   float64
	Eps float64
}

// String implements Query.
func (q *IntervalQuery) String() string {
	return fmt.Sprintf("MATCH INTERVAL %g +- %g", q.N, q.Eps)
}

// Run implements Query.
func (q *IntervalQuery) Run(ctx context.Context, db Database) (*Result, error) {
	matches, err := db.IntervalQuery(q.N, q.Eps)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, m.ID)
	}
	return &Result{Kind: "interval", IDs: ids, Intervals: matches}, nil
}

// effectiveEps resolves a statement's tolerance: an explicit EPS wins;
// without one, TOP n BY DISTANCE means pure nearest-neighbour search
// (unbounded radius) and everything else inherits the database's ε.
func effectiveEps(db Database, eps float64, opts core.QueryOptions) float64 {
	if eps >= 0 {
		return eps
	}
	if opts.TopK > 0 {
		return math.Inf(1)
	}
	return db.Config().Epsilon
}

// collectMatches materializes a streamed similarity statement: collect,
// sort into the canonical order, build the Result.
func collectMatches(kind string, run func(yield StreamFunc) (core.QueryStats, error)) (*Result, error) {
	var matches []core.Match
	stats, err := run(func(m core.Match) bool {
		matches = append(matches, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	core.SortMatches(matches)
	return &Result{Kind: kind, IDs: matchIDs(matches), Matches: matches, Stats: &stats}, nil
}

// appendProgressive renders the canonical progressive clauses: WITHIN
// ERROR first, then APPROX.
func appendProgressive(b *strings.Builder, maxErr float64, approx string) {
	if maxErr >= 0 {
		fmt.Fprintf(b, " WITHIN ERROR %g", maxErr)
	}
	if approx != "" {
		fmt.Fprintf(b, " APPROX %s", quoteIdent(approx))
	}
}

// finalMatchesOnly adapts a match-level StreamFunc to the frame-level
// cascade: intermediate band frames are dropped and only final accepted
// matches flow through — the view a non-progressive-aware consumer
// expects.
func finalMatchesOnly(yield StreamFunc) ProgressiveFunc {
	return func(pm core.ProgressiveMatch) bool {
		if pm.Final && pm.Match != nil {
			return yield(*pm.Match)
		}
		return true
	}
}

// collectProgressive materializes a progressive statement: final
// accepted matches are collected and sorted into the canonical order,
// intermediate frames discarded.
func collectProgressive(kind string, run func(yield ProgressiveFunc) (*Result, error)) (*Result, error) {
	var matches []core.Match
	res, err := run(func(pm core.ProgressiveMatch) bool {
		if pm.Final && pm.Match != nil {
			matches = append(matches, *pm.Match)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	core.SortMatches(matches)
	res.Kind = kind
	res.IDs = matchIDs(matches)
	res.Matches = matches
	return res, nil
}

// streamResult wraps a streamed similarity statement's stats.
func streamResult(kind string, stats core.QueryStats, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{Kind: kind, Stats: &stats}, nil
}

// ValueQuery is MATCH VALUE LIKE id [EPS e] [WITHIN ERROR w] [APPROX t]:
// the prior-art ±ε query with a stored sequence as the exemplar. Eps < 0
// means "use the database's ε". MaxError ≥ 0 (WITHIN ERROR) or a
// non-empty Approx (APPROX) routes execution through the progressive
// cascade — note the parser constructs MaxError as -1 when the clause is
// absent, so a zero-valued struct literal reads as WITHIN ERROR 0 (the
// exact-equivalent progressive run).
type ValueQuery struct {
	ExemplarID string
	Eps        float64
	// MaxError is the WITHIN ERROR bound (-1 = clause absent): accept a
	// record once its error band is at most this wide.
	MaxError float64
	// Approx caps the cascade depth ("" = absent): "sketch", "candidate"
	// or "exact".
	Approx string
}

// progressive reports whether the statement carries a quality clause.
func (q *ValueQuery) progressive() bool { return q.MaxError >= 0 || q.Approx != "" }

// String implements Query.
func (q *ValueQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MATCH VALUE LIKE %s", quoteIdent(q.ExemplarID))
	if q.Eps >= 0 {
		fmt.Fprintf(&b, " EPS %g", q.Eps)
	}
	appendProgressive(&b, q.MaxError, q.Approx)
	return b.String()
}

// Run implements Query.
func (q *ValueQuery) Run(ctx context.Context, db Database) (*Result, error) {
	return q.runBounded(ctx, db, core.QueryOptions{})
}

func (q *ValueQuery) runBounded(ctx context.Context, db Database, opts core.QueryOptions) (*Result, error) {
	if q.progressive() {
		return collectProgressive("value", func(yield ProgressiveFunc) (*Result, error) {
			return q.streamProgressive(ctx, db, opts, yield)
		})
	}
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	return collectMatches("value", func(yield StreamFunc) (core.QueryStats, error) {
		return db.ValueQueryStream(ctx, exemplar, effectiveEps(db, q.Eps, opts), opts, yield)
	})
}

// RunStream implements Streamer.
func (q *ValueQuery) RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error) {
	return q.streamBounded(ctx, db, core.QueryOptions{}, yield)
}

func (q *ValueQuery) streamBounded(ctx context.Context, db Database, opts core.QueryOptions, yield StreamFunc) (*Result, error) {
	if q.progressive() {
		return q.streamProgressive(ctx, db, opts, finalMatchesOnly(yield))
	}
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	stats, err := db.ValueQueryStream(ctx, exemplar, effectiveEps(db, q.Eps, opts), opts, yield)
	return streamResult("value", stats, err)
}

// streamProgressive runs the statement through the cascade with
// frame-level delivery.
func (q *ValueQuery) streamProgressive(ctx context.Context, db Database, opts core.QueryOptions, yield ProgressiveFunc) (*Result, error) {
	pd, err := progressiveDB(db)
	if err != nil {
		return nil, err
	}
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	opts = progressiveOpts(opts, q.MaxError, q.Approx)
	stats, err := pd.ValueQueryProgressive(ctx, exemplar, effectiveEps(db, q.Eps, opts), opts, yield)
	return streamResult("value", stats, err)
}

// DistanceQuery is MATCH DISTANCE LIKE id [METRIC m] [EPS e]: a
// whole-sequence similarity query under a named distance metric, routed
// through the query planner (feature-index pruning for l2/zl2, full scan
// otherwise). Metric defaults to "l2". Eps < 0 means "use the database's
// ε" — except under TOP n BY DISTANCE, where it means an unbounded
// search radius (the K nearest whatever their distance).
type DistanceQuery struct {
	ExemplarID string
	Metric     string
	Eps        float64
	// MaxError is the WITHIN ERROR bound (-1 = clause absent); see
	// ValueQuery.MaxError for the zero-value caveat.
	MaxError float64
	// Approx caps the cascade depth ("" = absent): "sketch", "candidate"
	// or "exact".
	Approx string
}

// progressive reports whether the statement carries a quality clause.
func (q *DistanceQuery) progressive() bool { return q.MaxError >= 0 || q.Approx != "" }

// String implements Query.
func (q *DistanceQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MATCH DISTANCE LIKE %s METRIC %s", quoteIdent(q.ExemplarID), quoteIdent(q.Metric))
	if q.Eps >= 0 {
		fmt.Fprintf(&b, " EPS %g", q.Eps)
	}
	appendProgressive(&b, q.MaxError, q.Approx)
	return b.String()
}

// Run implements Query.
func (q *DistanceQuery) Run(ctx context.Context, db Database) (*Result, error) {
	return q.runBounded(ctx, db, core.QueryOptions{})
}

func (q *DistanceQuery) runBounded(ctx context.Context, db Database, opts core.QueryOptions) (*Result, error) {
	if q.progressive() {
		return collectProgressive("distance", func(yield ProgressiveFunc) (*Result, error) {
			return q.streamProgressive(ctx, db, opts, yield)
		})
	}
	m, exemplar, err := q.operands(db)
	if err != nil {
		return nil, err
	}
	return collectMatches("distance", func(yield StreamFunc) (core.QueryStats, error) {
		return db.DistanceQueryStream(ctx, exemplar, m, effectiveEps(db, q.Eps, opts), opts, yield)
	})
}

// RunStream implements Streamer.
func (q *DistanceQuery) RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error) {
	return q.streamBounded(ctx, db, core.QueryOptions{}, yield)
}

func (q *DistanceQuery) streamBounded(ctx context.Context, db Database, opts core.QueryOptions, yield StreamFunc) (*Result, error) {
	if q.progressive() {
		return q.streamProgressive(ctx, db, opts, finalMatchesOnly(yield))
	}
	m, exemplar, err := q.operands(db)
	if err != nil {
		return nil, err
	}
	stats, err := db.DistanceQueryStream(ctx, exemplar, m, effectiveEps(db, q.Eps, opts), opts, yield)
	return streamResult("distance", stats, err)
}

// streamProgressive runs the statement through the cascade with
// frame-level delivery.
func (q *DistanceQuery) streamProgressive(ctx context.Context, db Database, opts core.QueryOptions, yield ProgressiveFunc) (*Result, error) {
	pd, err := progressiveDB(db)
	if err != nil {
		return nil, err
	}
	m, exemplar, err := q.operands(db)
	if err != nil {
		return nil, err
	}
	opts = progressiveOpts(opts, q.MaxError, q.Approx)
	stats, err := pd.DistanceQueryProgressive(ctx, exemplar, m, effectiveEps(db, q.Eps, opts), opts, yield)
	return streamResult("distance", stats, err)
}

func (q *DistanceQuery) operands(db Database) (dist.Metric, seq.Sequence, error) {
	m, err := dist.ByName(q.Metric)
	if err != nil {
		return nil, nil, fmt.Errorf("querylang: %w", err)
	}
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, nil, err
	}
	return m, exemplar, nil
}

// ShapeQuery is MATCH SHAPE LIKE id [PEAKS p] [HEIGHT h] [SPACING s]: the
// generalized approximate query anchored at a stored sequence.
type ShapeQuery struct {
	ExemplarID string
	PeaksTol   int
	HeightTol  float64
	SpacingTol float64
}

// String implements Query.
func (q *ShapeQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MATCH SHAPE LIKE %s", quoteIdent(q.ExemplarID))
	if q.PeaksTol > 0 {
		fmt.Fprintf(&b, " PEAKS %d", q.PeaksTol)
	}
	if q.HeightTol > 0 {
		fmt.Fprintf(&b, " HEIGHT %g", q.HeightTol)
	}
	if q.SpacingTol > 0 {
		fmt.Fprintf(&b, " SPACING %g", q.SpacingTol)
	}
	return b.String()
}

func (q *ShapeQuery) tolerance() core.ShapeTolerance {
	return core.ShapeTolerance{Peaks: q.PeaksTol, Height: q.HeightTol, Spacing: q.SpacingTol}
}

// Run implements Query.
func (q *ShapeQuery) Run(ctx context.Context, db Database) (*Result, error) {
	return q.runBounded(ctx, db, core.QueryOptions{})
}

func (q *ShapeQuery) runBounded(ctx context.Context, db Database, opts core.QueryOptions) (*Result, error) {
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	return collectMatches("shape", func(yield StreamFunc) (core.QueryStats, error) {
		return db.ShapeQueryStream(ctx, exemplar, q.tolerance(), opts, yield)
	})
}

// RunStream implements Streamer.
func (q *ShapeQuery) RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error) {
	return q.streamBounded(ctx, db, core.QueryOptions{}, yield)
}

func (q *ShapeQuery) streamBounded(ctx context.Context, db Database, opts core.QueryOptions, yield StreamFunc) (*Result, error) {
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	stats, err := db.ShapeQueryStream(ctx, exemplar, q.tolerance(), opts, yield)
	return streamResult("shape", stats, err)
}

// BoundedQuery wraps a statement with the result bounds of its trailing
// clauses: TOP n BY DISTANCE (the n nearest matches, nearest-first, with
// best-so-far pruning pushed into the engine) and LIMIT n (stop after n
// matches). For the similarity statements the bounds execute inside the
// engine; for the other match-producing kinds (MATCH PEAKS) the full
// answer is computed, ordered and truncated. Parse only attaches bounds
// to statements that support them.
type BoundedQuery struct {
	Inner Query
	// TopK is the TOP n BY DISTANCE clause (0 = absent).
	TopK int
	// Limit is the LIMIT n clause (0 = absent).
	Limit int
}

// String implements Query.
func (q *BoundedQuery) String() string {
	var b strings.Builder
	b.WriteString(q.Inner.String())
	if q.TopK > 0 {
		fmt.Fprintf(&b, " TOP %d BY DISTANCE", q.TopK)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

func (q *BoundedQuery) opts() core.QueryOptions {
	return core.QueryOptions{Limit: q.Limit, TopK: q.TopK}
}

// Run implements Query.
func (q *BoundedQuery) Run(ctx context.Context, db Database) (*Result, error) {
	switch inner := q.Inner.(type) {
	case *ValueQuery:
		return inner.runBounded(ctx, db, q.opts())
	case *DistanceQuery:
		return inner.runBounded(ctx, db, q.opts())
	case *ShapeQuery:
		return inner.runBounded(ctx, db, q.opts())
	}
	res, err := q.Inner.Run(ctx, db)
	if err != nil {
		return nil, err
	}
	return q.truncate(res), nil
}

// RunStream implements Streamer.
func (q *BoundedQuery) RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error) {
	switch inner := q.Inner.(type) {
	case *ValueQuery:
		return inner.streamBounded(ctx, db, q.opts(), yield)
	case *DistanceQuery:
		return inner.streamBounded(ctx, db, q.opts(), yield)
	case *ShapeQuery:
		return inner.streamBounded(ctx, db, q.opts(), yield)
	}
	res, err := q.Run(ctx, db)
	if err != nil {
		return nil, err
	}
	return drainMatches(res, yield), nil
}

// truncate applies the bounds to a materialized fixed-path result. The
// kind's primary item list is cut (matches already arrive in the
// exact-first, smallest-deviation order, so TOP n is literally the first
// n) and the id list rebuilt from what remains.
func (q *BoundedQuery) truncate(res *Result) *Result {
	keep := q.Limit
	if q.TopK > 0 && (keep == 0 || q.TopK < keep) {
		keep = q.TopK
	}
	if keep <= 0 {
		return res
	}
	cut := func(have int) int {
		if have > keep {
			res.Dropped += have - keep
			return keep
		}
		return have
	}
	switch {
	case res.Matches != nil:
		res.Matches = res.Matches[:cut(len(res.Matches))]
		res.IDs = matchIDs(res.Matches)
	case res.Hits != nil:
		res.Hits = res.Hits[:cut(len(res.Hits))]
		res.IDs = distinctHitIDs(res.Hits)
	case res.Intervals != nil:
		res.Intervals = res.Intervals[:cut(len(res.Intervals))]
		ids := make([]string, 0, len(res.Intervals))
		for _, m := range res.Intervals {
			ids = append(ids, m.ID)
		}
		res.IDs = ids
	default:
		res.IDs = res.IDs[:cut(len(res.IDs))]
	}
	if res.Dropped > 0 {
		if res.Stats == nil {
			res.Stats = &core.QueryStats{
				Query:   res.Kind,
				Plan:    fixedPlans[res.Kind],
				Matches: len(res.IDs),
			}
		}
		res.Stats.Truncated = true
	}
	return res
}

// ExplainQuery wraps any statement under EXPLAIN: the inner query runs
// normally and the result additionally carries its execution plan. Query
// kinds the planner does not route report their fixed access path.
type ExplainQuery struct {
	Inner Query
}

// String implements Query.
func (q *ExplainQuery) String() string { return "EXPLAIN " + q.Inner.String() }

// fixedPlans names the access path of every statement the planner has no
// routing decision for.
var fixedPlans = map[string]string{
	"pattern":  "symbol-index",
	"find":     "symbol-index",
	"peaks":    "record-scan",
	"interval": "inverted-index",
}

// explain marks a result as EXPLAIN'ed, synthesizing stats for kinds
// with a fixed access path.
func explain(res *Result) *Result {
	res.Explain = true
	if res.Stats == nil {
		res.Stats = &core.QueryStats{
			Query:   res.Kind,
			Plan:    fixedPlans[res.Kind],
			Matches: len(res.IDs),
		}
	}
	return res
}

// Run implements Query.
func (q *ExplainQuery) Run(ctx context.Context, db Database) (*Result, error) {
	res, err := q.Inner.Run(ctx, db)
	if err != nil {
		return nil, err
	}
	return explain(res), nil
}

// RunStream implements Streamer.
func (q *ExplainQuery) RunStream(ctx context.Context, db Database, yield StreamFunc) (*Result, error) {
	res, err := RunStream(ctx, db, q.Inner, yield)
	if err != nil {
		return nil, err
	}
	return explain(res), nil
}

// keywords every statement position may consume; identifiers spelled like
// one must be quoted to round-trip.
var reservedWords = map[string]bool{
	"explain": true, "match": true, "find": true, "pattern": true,
	"peaks": true, "tolerance": true, "interval": true, "value": true,
	"distance": true, "shape": true, "like": true, "eps": true,
	"metric": true, "height": true, "spacing": true,
	"limit": true, "top": true, "by": true,
	"within": true, "error": true, "approx": true,
}

// quoteString renders a pattern string in lexer syntax: raw content
// between quotes (the lexer has no escape sequences), choosing the quote
// kind the content does not contain. A string parsed from a statement
// never contains its own delimiter, so this always round-trips.
func quoteString(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// quoteIdent renders an identifier so it re-parses as the same identifier:
// bare when the lexer would read it back as one word, quoted otherwise
// (spaces, keyword spellings, leading digit/dash — which would lex as a
// number — and the empty string).
func quoteIdent(id string) string {
	bare := id != "" && !reservedWords[strings.ToLower(id)]
	if bare {
		if c := id[0]; c == '-' || c == '.' || (c >= '0' && c <= '9') {
			bare = false
		}
	}
	if bare {
		for i := 0; i < len(id); i++ {
			c := id[i]
			if !(c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				bare = false
				break
			}
		}
	}
	if bare {
		return id
	}
	if strings.Contains(id, `"`) {
		return "'" + id + "'" // a parsed id never contains both quote kinds
	}
	return `"` + id + `"`
}

// loadExemplar fetches a stored sequence at full resolution when an archive
// exists, falling back to the representation reconstruction.
func loadExemplar(db Database, id string) (seq.Sequence, error) {
	if raw, err := db.Raw(id); err == nil {
		return raw, nil
	}
	s, err := db.Reconstruct(id)
	if err != nil {
		return nil, fmt.Errorf("querylang: exemplar %q: %w", id, err)
	}
	return s, nil
}

func matchIDs(matches []core.Match) []string {
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, m.ID)
	}
	return ids
}

func distinctHitIDs(hits []core.PatternHit) []string {
	seen := map[string]bool{}
	var ids []string
	for _, h := range hits {
		if !seen[h.ID] {
			seen[h.ID] = true
			ids = append(ids, h.ID)
		}
	}
	sort.Strings(ids)
	return ids
}
