package querylang

import (
	"fmt"
	"sort"
	"strings"

	"seqrep/internal/core"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// Database is the engine surface the language executes against; *core.DB
// satisfies it. Defined as an interface so the language can be tested with
// fakes and reused over facades.
type Database interface {
	MatchPattern(pattern string) ([]string, error)
	SearchPattern(pattern string) ([]core.PatternHit, error)
	PeakCount(k, tol int) ([]core.Match, error)
	IntervalQuery(n, eps float64) ([]core.IntervalMatch, error)
	ValueQueryStats(exemplar seq.Sequence, eps float64) ([]core.Match, core.QueryStats, error)
	DistanceQueryStats(exemplar seq.Sequence, m dist.Metric, eps float64) ([]core.Match, core.QueryStats, error)
	ShapeQuery(exemplar seq.Sequence, tol core.ShapeTolerance) ([]core.Match, error)
	Raw(id string) (seq.Sequence, error)
	Reconstruct(id string) (seq.Sequence, error)
	Config() core.Config
}

var _ Database = (*core.DB)(nil)

// Result is the uniform answer of every query kind: the distinct matching
// ids plus the kind-specific detail.
type Result struct {
	Kind      string // "pattern", "find", "peaks", "interval", "value", "distance", "shape"
	IDs       []string
	Matches   []core.Match         // peaks / value / distance / shape queries
	Hits      []core.PatternHit    // FIND queries
	Intervals []core.IntervalMatch // interval queries
	// Stats reports the execution plan for planner-routed statements
	// (MATCH VALUE, MATCH DISTANCE) and for every EXPLAIN'ed statement.
	Stats *core.QueryStats
	// Explain marks a statement run under EXPLAIN: Stats is then always
	// set, synthesized for query kinds with a fixed access path.
	Explain bool
}

// Exec parses and runs src against db in one call.
func Exec(db Database, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Run(db)
}

// Canonical parses src and returns its canonical rendering: the one
// spelling every equivalent statement normalizes to (keyword casing,
// default clauses, quoting). Two statements with equal canonical forms
// execute identically, which makes the canonical form a sound cache key
// for query results — the property the fuzzer's parse → print → reparse
// round trip pins. EXPLAIN is part of the form: an EXPLAIN'ed statement
// answers differently and canonicalizes differently.
func Canonical(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// MatchPatternQuery is MATCH PATTERN "...": whole symbol strings matching
// a slope-sign regular expression.
type MatchPatternQuery struct {
	Pattern string
}

// String implements Query.
func (q *MatchPatternQuery) String() string { return "MATCH PATTERN " + quoteString(q.Pattern) }

// Run implements Query.
func (q *MatchPatternQuery) Run(db Database) (*Result, error) {
	ids, err := db.MatchPattern(q.Pattern)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "pattern", IDs: ids}, nil
}

// FindPatternQuery is FIND PATTERN "...": occurrences anywhere within each
// sequence.
type FindPatternQuery struct {
	Pattern string
}

// String implements Query.
func (q *FindPatternQuery) String() string { return "FIND PATTERN " + quoteString(q.Pattern) }

// Run implements Query.
func (q *FindPatternQuery) Run(db Database) (*Result, error) {
	hits, err := db.SearchPattern(q.Pattern)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "find", IDs: distinctHitIDs(hits), Hits: hits}, nil
}

// PeaksQuery is MATCH PEAKS k [TOLERANCE t].
type PeaksQuery struct {
	Count     int
	Tolerance int
}

// String implements Query.
func (q *PeaksQuery) String() string {
	if q.Tolerance > 0 {
		return fmt.Sprintf("MATCH PEAKS %d TOLERANCE %d", q.Count, q.Tolerance)
	}
	return fmt.Sprintf("MATCH PEAKS %d", q.Count)
}

// Run implements Query.
func (q *PeaksQuery) Run(db Database) (*Result, error) {
	matches, err := db.PeakCount(q.Count, q.Tolerance)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "peaks", IDs: matchIDs(matches), Matches: matches}, nil
}

// IntervalQuery is MATCH INTERVAL n [+- eps].
type IntervalQuery struct {
	N   float64
	Eps float64
}

// String implements Query.
func (q *IntervalQuery) String() string {
	return fmt.Sprintf("MATCH INTERVAL %g +- %g", q.N, q.Eps)
}

// Run implements Query.
func (q *IntervalQuery) Run(db Database) (*Result, error) {
	matches, err := db.IntervalQuery(q.N, q.Eps)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, m.ID)
	}
	return &Result{Kind: "interval", IDs: ids, Intervals: matches}, nil
}

// ValueQuery is MATCH VALUE LIKE id [EPS e]: the prior-art ±ε query with a
// stored sequence as the exemplar. Eps < 0 means "use the database's ε".
type ValueQuery struct {
	ExemplarID string
	Eps        float64
}

// String implements Query.
func (q *ValueQuery) String() string {
	if q.Eps >= 0 {
		return fmt.Sprintf("MATCH VALUE LIKE %s EPS %g", quoteIdent(q.ExemplarID), q.Eps)
	}
	return fmt.Sprintf("MATCH VALUE LIKE %s", quoteIdent(q.ExemplarID))
}

// Run implements Query.
func (q *ValueQuery) Run(db Database) (*Result, error) {
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	eps := q.Eps
	if eps < 0 {
		eps = db.Config().Epsilon
	}
	matches, stats, err := db.ValueQueryStats(exemplar, eps)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "value", IDs: matchIDs(matches), Matches: matches, Stats: &stats}, nil
}

// DistanceQuery is MATCH DISTANCE LIKE id [METRIC m] [EPS e]: a
// whole-sequence similarity query under a named distance metric, routed
// through the query planner (feature-index pruning for l2/zl2, full scan
// otherwise). Metric defaults to "l2"; Eps < 0 means "use the database's
// ε".
type DistanceQuery struct {
	ExemplarID string
	Metric     string
	Eps        float64
}

// String implements Query.
func (q *DistanceQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MATCH DISTANCE LIKE %s METRIC %s", quoteIdent(q.ExemplarID), quoteIdent(q.Metric))
	if q.Eps >= 0 {
		fmt.Fprintf(&b, " EPS %g", q.Eps)
	}
	return b.String()
}

// Run implements Query.
func (q *DistanceQuery) Run(db Database) (*Result, error) {
	m, err := dist.ByName(q.Metric)
	if err != nil {
		return nil, fmt.Errorf("querylang: %w", err)
	}
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	eps := q.Eps
	if eps < 0 {
		eps = db.Config().Epsilon
	}
	matches, stats, err := db.DistanceQueryStats(exemplar, m, eps)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "distance", IDs: matchIDs(matches), Matches: matches, Stats: &stats}, nil
}

// ExplainQuery wraps any statement under EXPLAIN: the inner query runs
// normally and the result additionally carries its execution plan. Query
// kinds the planner does not route report their fixed access path.
type ExplainQuery struct {
	Inner Query
}

// String implements Query.
func (q *ExplainQuery) String() string { return "EXPLAIN " + q.Inner.String() }

// fixedPlans names the access path of every statement the planner has no
// routing decision for.
var fixedPlans = map[string]string{
	"pattern":  "symbol-index",
	"find":     "symbol-index",
	"peaks":    "record-scan",
	"interval": "inverted-index",
	"shape":    "record-scan",
}

// Run implements Query.
func (q *ExplainQuery) Run(db Database) (*Result, error) {
	res, err := q.Inner.Run(db)
	if err != nil {
		return nil, err
	}
	res.Explain = true
	if res.Stats == nil {
		res.Stats = &core.QueryStats{
			Query:   res.Kind,
			Plan:    fixedPlans[res.Kind],
			Matches: len(res.IDs),
		}
	}
	return res, nil
}

// ShapeQuery is MATCH SHAPE LIKE id [PEAKS p] [HEIGHT h] [SPACING s]: the
// generalized approximate query anchored at a stored sequence.
type ShapeQuery struct {
	ExemplarID string
	PeaksTol   int
	HeightTol  float64
	SpacingTol float64
}

// String implements Query.
func (q *ShapeQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MATCH SHAPE LIKE %s", quoteIdent(q.ExemplarID))
	if q.PeaksTol > 0 {
		fmt.Fprintf(&b, " PEAKS %d", q.PeaksTol)
	}
	if q.HeightTol > 0 {
		fmt.Fprintf(&b, " HEIGHT %g", q.HeightTol)
	}
	if q.SpacingTol > 0 {
		fmt.Fprintf(&b, " SPACING %g", q.SpacingTol)
	}
	return b.String()
}

// Run implements Query.
func (q *ShapeQuery) Run(db Database) (*Result, error) {
	exemplar, err := loadExemplar(db, q.ExemplarID)
	if err != nil {
		return nil, err
	}
	matches, err := db.ShapeQuery(exemplar, core.ShapeTolerance{
		Peaks:   q.PeaksTol,
		Height:  q.HeightTol,
		Spacing: q.SpacingTol,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "shape", IDs: matchIDs(matches), Matches: matches}, nil
}

// keywords every statement position may consume; identifiers spelled like
// one must be quoted to round-trip.
var reservedWords = map[string]bool{
	"explain": true, "match": true, "find": true, "pattern": true,
	"peaks": true, "tolerance": true, "interval": true, "value": true,
	"distance": true, "shape": true, "like": true, "eps": true,
	"metric": true, "height": true, "spacing": true,
}

// quoteString renders a pattern string in lexer syntax: raw content
// between quotes (the lexer has no escape sequences), choosing the quote
// kind the content does not contain. A string parsed from a statement
// never contains its own delimiter, so this always round-trips.
func quoteString(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// quoteIdent renders an identifier so it re-parses as the same identifier:
// bare when the lexer would read it back as one word, quoted otherwise
// (spaces, keyword spellings, leading digit/dash — which would lex as a
// number — and the empty string).
func quoteIdent(id string) string {
	bare := id != "" && !reservedWords[strings.ToLower(id)]
	if bare {
		if c := id[0]; c == '-' || c == '.' || (c >= '0' && c <= '9') {
			bare = false
		}
	}
	if bare {
		for i := 0; i < len(id); i++ {
			c := id[i]
			if !(c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				bare = false
				break
			}
		}
	}
	if bare {
		return id
	}
	if strings.Contains(id, `"`) {
		return "'" + id + "'" // a parsed id never contains both quote kinds
	}
	return `"` + id + `"`
}

// loadExemplar fetches a stored sequence at full resolution when an archive
// exists, falling back to the representation reconstruction.
func loadExemplar(db Database, id string) (seq.Sequence, error) {
	if raw, err := db.Raw(id); err == nil {
		return raw, nil
	}
	s, err := db.Reconstruct(id)
	if err != nil {
		return nil, fmt.Errorf("querylang: exemplar %q: %w", id, err)
	}
	return s, nil
}

func matchIDs(matches []core.Match) []string {
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, m.ID)
	}
	return ids
}

func distinctHitIDs(hits []core.PatternHit) []string {
	seen := map[string]bool{}
	var ids []string
	for _, h := range hits {
		if !seen[h.ID] {
			seen[h.ID] = true
			ids = append(ids, h.ID)
		}
	}
	sort.Strings(ids)
	return ids
}
