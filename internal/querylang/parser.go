package querylang

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Query is one parsed, executable query.
type Query interface {
	// Run executes the query against a database. The similarity
	// statements honor ctx's cancellation and deadline; the fixed-path
	// statements complete regardless (they are index lookups, not scans).
	Run(ctx context.Context, db Database) (*Result, error)
	// String renders the query back in canonical language form.
	String() string
}

// parser walks the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse compiles one query statement.
func Parse(src string) (Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("querylang: unexpected %q after query (position %d)", t.text, t.pos)
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKeyword consumes the next token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		t := p.peek()
		return fmt.Errorf("querylang: expected %s at position %d, got %q", strings.ToUpper(kw), t.pos, t.text)
	}
	return nil
}

func (p *parser) expectNumber(what string) (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("querylang: expected %s (a number) at position %d, got %q", what, t.pos, t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("querylang: bad number %q at position %d", t.text, t.pos)
	}
	return v, nil
}

func (p *parser) expectString(what string) (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", fmt.Errorf("querylang: expected %s (a quoted string) at position %d, got %q", what, t.pos, t.text)
	}
	return t.text, nil
}

func (p *parser) expectIdent(what string) (string, error) {
	t := p.next()
	if t.kind == tokString {
		return t.text, nil // quoted identifiers allowed
	}
	if t.kind != tokWord {
		return "", fmt.Errorf("querylang: expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t.text, nil
}

// parseQuery dispatches on the leading verb.
func (p *parser) parseQuery() (Query, error) {
	switch {
	case p.acceptKeyword("EXPLAIN"):
		inner, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if wrapped, ok := inner.(*ExplainQuery); ok {
			return wrapped, nil // collapse EXPLAIN EXPLAIN
		}
		return &ExplainQuery{Inner: inner}, nil
	case p.acceptKeyword("MATCH"):
		q, err := p.parseMatchBody()
		if err != nil {
			return nil, err
		}
		return p.parseBounds(q)
	case p.acceptKeyword("FIND"):
		if err := p.expectKeyword("PATTERN"); err != nil {
			return nil, err
		}
		pat, err := p.expectString("pattern")
		if err != nil {
			return nil, err
		}
		return p.parseBounds(&FindPatternQuery{Pattern: pat})
	default:
		t := p.peek()
		return nil, fmt.Errorf("querylang: expected EXPLAIN, MATCH or FIND at position %d, got %q", t.pos, t.text)
	}
}

// parseMatchBody parses everything after MATCH.
func (p *parser) parseMatchBody() (Query, error) {
	switch {
	case p.acceptKeyword("PATTERN"):
		pat, err := p.expectString("pattern")
		if err != nil {
			return nil, err
		}
		return &MatchPatternQuery{Pattern: pat}, nil

	case p.acceptKeyword("PEAKS"):
		k, err := p.expectNumber("peak count")
		if err != nil {
			return nil, err
		}
		if k != float64(int(k)) || k < 0 {
			return nil, fmt.Errorf("querylang: peak count must be a non-negative integer, got %v", k)
		}
		q := &PeaksQuery{Count: int(k)}
		if p.acceptKeyword("TOLERANCE") {
			tol, err := p.expectNumber("tolerance")
			if err != nil {
				return nil, err
			}
			if tol != float64(int(tol)) || tol < 0 {
				return nil, fmt.Errorf("querylang: tolerance must be a non-negative integer, got %v", tol)
			}
			q.Tolerance = int(tol)
		}
		return q, nil

	case p.acceptKeyword("INTERVAL"):
		n, err := p.expectNumber("interval length")
		if err != nil {
			return nil, err
		}
		q := &IntervalQuery{N: n}
		if t := p.peek(); t.kind == tokPlusMinus {
			p.next()
			eps, err := p.expectNumber("interval tolerance")
			if err != nil {
				return nil, err
			}
			q.Eps = eps
		}
		return q, nil

	case p.acceptKeyword("VALUE"):
		if err := p.expectKeyword("LIKE"); err != nil {
			return nil, err
		}
		id, err := p.expectIdent("sequence id")
		if err != nil {
			return nil, err
		}
		q := &ValueQuery{ExemplarID: id, Eps: -1, MaxError: -1}
		if p.acceptKeyword("EPS") {
			eps, err := p.expectNumber("eps")
			if err != nil {
				return nil, err
			}
			q.Eps = eps
		}
		if err := p.parseProgressive(&q.MaxError, &q.Approx); err != nil {
			return nil, err
		}
		return q, nil

	case p.acceptKeyword("DISTANCE"):
		if err := p.expectKeyword("LIKE"); err != nil {
			return nil, err
		}
		id, err := p.expectIdent("sequence id")
		if err != nil {
			return nil, err
		}
		q := &DistanceQuery{ExemplarID: id, Metric: "l2", Eps: -1, MaxError: -1}
		if p.acceptKeyword("METRIC") {
			name, err := p.expectIdent("metric name")
			if err != nil {
				return nil, err
			}
			q.Metric = name
		}
		if p.acceptKeyword("EPS") {
			eps, err := p.expectNumber("eps")
			if err != nil {
				return nil, err
			}
			q.Eps = eps
		}
		if err := p.parseProgressive(&q.MaxError, &q.Approx); err != nil {
			return nil, err
		}
		return q, nil

	case p.acceptKeyword("SHAPE"):
		if err := p.expectKeyword("LIKE"); err != nil {
			return nil, err
		}
		id, err := p.expectIdent("sequence id")
		if err != nil {
			return nil, err
		}
		q := &ShapeQuery{ExemplarID: id}
		for {
			switch {
			case p.acceptKeyword("PEAKS"):
				v, err := p.expectNumber("peaks tolerance")
				if err != nil {
					return nil, err
				}
				if v != float64(int(v)) || v < 0 {
					return nil, fmt.Errorf("querylang: PEAKS tolerance must be a non-negative integer, got %v", v)
				}
				q.PeaksTol = int(v)
			case p.acceptKeyword("HEIGHT"):
				v, err := p.expectNumber("height tolerance")
				if err != nil {
					return nil, err
				}
				q.HeightTol = v
			case p.acceptKeyword("SPACING"):
				v, err := p.expectNumber("spacing tolerance")
				if err != nil {
					return nil, err
				}
				q.SpacingTol = v
			default:
				return q, nil
			}
		}

	default:
		t := p.peek()
		return nil, fmt.Errorf("querylang: expected PATTERN, PEAKS, INTERVAL, VALUE, DISTANCE or SHAPE at position %d, got %q", t.pos, t.text)
	}
}

// parseProgressive parses the optional progressive-quality clauses —
// WITHIN ERROR e and APPROX tier, in either order, each at most once —
// into the query's MaxError (-1 stays "absent") and Approx ("" stays
// "absent") fields. The canonical rendering orders WITHIN ERROR before
// APPROX.
func (p *parser) parseProgressive(maxErr *float64, approx *string) error {
	for {
		switch {
		case p.acceptKeyword("WITHIN"):
			if *maxErr >= 0 {
				return fmt.Errorf("querylang: duplicate WITHIN ERROR clause at position %d", p.peek().pos)
			}
			if err := p.expectKeyword("ERROR"); err != nil {
				return err
			}
			v, err := p.expectNumber("error bound")
			if err != nil {
				return err
			}
			if v < 0 {
				return fmt.Errorf("querylang: WITHIN ERROR bound must be non-negative, got %v", v)
			}
			*maxErr = v
		case p.acceptKeyword("APPROX"):
			if *approx != "" {
				return fmt.Errorf("querylang: duplicate APPROX clause at position %d", p.peek().pos)
			}
			t := p.peek()
			name, err := p.expectIdent("quality tier")
			if err != nil {
				return err
			}
			name = strings.ToLower(name)
			switch name {
			case "sketch", "candidate", "exact":
			default:
				return fmt.Errorf("querylang: unknown APPROX tier %q at position %d (want sketch, candidate or exact)", name, t.pos)
			}
			*approx = name
		default:
			return nil
		}
	}
}

// supportsTopK reports whether a statement produces distance-ordered
// matches TOP n BY DISTANCE can rank.
func supportsTopK(q Query) bool {
	switch q.(type) {
	case *PeaksQuery, *ValueQuery, *DistanceQuery, *ShapeQuery:
		return true
	}
	return false
}

// parseBounds parses the optional trailing result-bound clauses —
// TOP n BY DISTANCE and LIMIT n, in either order, each at most once —
// wrapping q in a BoundedQuery when any is present. The canonical
// rendering orders TOP before LIMIT.
func (p *parser) parseBounds(q Query) (Query, error) {
	var topK, limit int
	for {
		switch {
		case p.acceptKeyword("TOP"):
			if topK > 0 {
				return nil, fmt.Errorf("querylang: duplicate TOP clause at position %d", p.peek().pos)
			}
			n, err := p.expectNumber("top-k count")
			if err != nil {
				return nil, err
			}
			if n != float64(int(n)) || n < 1 {
				return nil, fmt.Errorf("querylang: TOP count must be a positive integer, got %v", n)
			}
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("DISTANCE"); err != nil {
				return nil, err
			}
			if !supportsTopK(q) {
				return nil, fmt.Errorf("querylang: TOP n BY DISTANCE applies only to statements returning matches with deviations (MATCH PEAKS, VALUE, DISTANCE, SHAPE)")
			}
			if IsProgressive(q) {
				return nil, fmt.Errorf("querylang: TOP n BY DISTANCE cannot combine with WITHIN ERROR / APPROX — a band-accepted answer has no exact distance to rank by")
			}
			topK = int(n)
		case p.acceptKeyword("LIMIT"):
			if limit > 0 {
				return nil, fmt.Errorf("querylang: duplicate LIMIT clause at position %d", p.peek().pos)
			}
			n, err := p.expectNumber("limit")
			if err != nil {
				return nil, err
			}
			if n != float64(int(n)) || n < 1 {
				return nil, fmt.Errorf("querylang: LIMIT must be a positive integer, got %v", n)
			}
			limit = int(n)
		default:
			if topK == 0 && limit == 0 {
				return q, nil
			}
			return &BoundedQuery{Inner: q, TopK: topK, Limit: limit}, nil
		}
	}
}
