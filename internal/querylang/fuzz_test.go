package querylang

import (
	"context"
	"sync"
	"testing"

	"seqrep/internal/core"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// queryLangSeeds is every statement form documented in docs/QUERYLANG.md
// (one worked example per statement, plus the EXPLAIN and edge spellings
// the lexer supports). The committed corpus under testdata/fuzz mirrors
// these.
var queryLangSeeds = []string{
	`MATCH PATTERN "UF*D(F|D)*UF*D"`,
	`FIND PATTERN "U+D"`,
	`MATCH PEAKS 2 TOLERANCE 1`,
	`MATCH INTERVAL 135 +- 2`,
	`MATCH INTERVAL 135 ± 2`,
	`MATCH VALUE LIKE ecg1 EPS 0.5`,
	`MATCH DISTANCE LIKE ecg1 METRIC zl2 EPS 3`,
	`MATCH SHAPE LIKE exemplar PEAKS 0 HEIGHT 0.25 SPACING 0.3`,
	`EXPLAIN MATCH VALUE LIKE ecg1`,
	`EXPLAIN MATCH DISTANCE LIKE two METRIC l1 EPS 10`,
	`match peaks = 2`,
	`MATCH SHAPE LIKE "quoted id" SPACING 0.1`,
	`MATCH VALUE LIKE two`,
	`FIND PATTERN 'U{2,4}D'`,
	`MATCH VALUE LIKE ecg1 LIMIT 5`,
	`MATCH DISTANCE LIKE ecg1 TOP 10 BY DISTANCE`,
	`MATCH DISTANCE LIKE two METRIC zl2 EPS 3 TOP 5 BY DISTANCE LIMIT 3`,
	`EXPLAIN MATCH PEAKS 2 TOP 1 BY DISTANCE`,
	`match shape like two height 0.25 top 2 by distance limit 9`,
	`MATCH VALUE LIKE "limit" LIMIT 1`,
	`MATCH VALUE LIKE ecg1 EPS 0.5 WITHIN ERROR 0.1`,
	`MATCH DISTANCE LIKE ecg1 METRIC l2 EPS 3 WITHIN ERROR 0.5 APPROX candidate`,
	`MATCH DISTANCE LIKE two EPS 2 APPROX sketch`,
	`match value like two approx exact limit 3`,
	`EXPLAIN MATCH DISTANCE LIKE two METRIC zl2 EPS 3 WITHIN ERROR 0`,
	`MATCH DISTANCE LIKE ecg1 APPROX candidate WITHIN ERROR 1.5`,
}

// fuzzDB lazily builds one small database per fuzz process so statements
// that parse can also execute.
var fuzzDB = sync.OnceValue(func() Database {
	db, err := core.New(core.Config{Archive: store.NewMemArchive(), IndexCoeffs: 4})
	if err != nil {
		panic(err)
	}
	two, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		panic(err)
	}
	three, err := synth.ThreePeakFever(97)
	if err != nil {
		panic(err)
	}
	if err := db.Ingest("two", two); err != nil {
		panic(err)
	}
	if err := db.Ingest("three", three); err != nil {
		panic(err)
	}
	if err := db.Ingest("ecg1", two.ShiftValue(1)); err != nil {
		panic(err)
	}
	return db
})

// FuzzParseExec feeds arbitrary statements through the full parse → print
// → reparse → execute path. Invariants: the parser never panics; a
// statement that parses re-renders to a canonical form that parses to the
// same canonical form; execution never panics (errors are fine).
func FuzzParseExec(f *testing.F) {
	for _, seed := range queryLangSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound pattern-compile work, not parser correctness
		}
		q, err := Parse(src)
		if err != nil {
			if q != nil {
				t.Errorf("Parse(%q) returned both a query and an error", src)
			}
			return
		}
		canonical := q.String()
		q2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q rejected: %v", src, canonical, err)
		}
		if got := q2.String(); got != canonical {
			t.Fatalf("unstable canonical form: %q -> %q -> %q", src, canonical, got)
		}
		_, _ = q.Run(context.Background(), fuzzDB()) // must not panic; errors are expected
	})
}
