// Package querylang implements a small textual query language for
// generalized approximate queries — the paper's §7 future work ("Define a
// query language that supports generalized approximate queries"). The
// language surfaces every query type of the engine:
//
//	MATCH PATTERN "UF*D(F|D)*UF*D"
//	FIND PATTERN "U+D+"
//	MATCH PEAKS 2 TOLERANCE 1
//	MATCH INTERVAL 135 +- 2
//	MATCH VALUE LIKE ecg1 EPS 0.5
//	MATCH DISTANCE LIKE ecg1 METRIC zl2 EPS 3
//	MATCH SHAPE LIKE exemplar PEAKS 0 HEIGHT 0.25 SPACING 0.3
//	MATCH DISTANCE LIKE ecg1 TOP 10 BY DISTANCE
//	MATCH PEAKS 2 LIMIT 5
//	EXPLAIN MATCH VALUE LIKE ecg1
//
// Keywords are case-insensitive; identifiers name stored sequences;
// pattern strings are quoted with single or double quotes. Any statement
// may be prefixed with EXPLAIN, which additionally reports the execution
// plan (index vs scan, candidate and pruned counts) in Result.Stats.
// Statements may carry trailing result bounds: LIMIT n stops after n
// matches, and TOP n BY DISTANCE (on the match-producing statements)
// returns the n nearest matches, pushed into the engine as a shrinking
// best-so-far pruning radius.
//
// The full grammar, with one worked example per statement, is documented
// in docs/QUERYLANG.md at the repository root.
package querylang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF  tokenKind = iota
	tokWord           // keyword or identifier
	tokNumber
	tokString
	tokPlusMinus // "+-" or "±"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokWord:
		return "word"
	case tokNumber:
		return "number"
	case tokString:
		return "quoted string"
	case tokPlusMinus:
		return "'+-'"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits src into tokens. It returns an error for unterminated strings
// or stray characters.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < n && src[j] != quote {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("querylang: unterminated string at position %d", i)
			}
			out = append(out, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case c == '+' && i+1 < n && src[i+1] == '-':
			out = append(out, token{kind: tokPlusMinus, text: "+-", pos: i})
			i += 2
		case strings.HasPrefix(src[i:], "±"):
			out = append(out, token{kind: tokPlusMinus, text: "±", pos: i})
			i += len("±")
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			j := i
			if src[j] == '-' {
				j++
			}
			digits := false
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
				digits = true
			}
			if j < n && src[j] == '.' {
				j++
				for j < n && (src[j] >= '0' && src[j] <= '9') {
					j++
					digits = true
				}
			}
			if !digits {
				return nil, fmt.Errorf("querylang: stray %q at position %d", c, i)
			}
			out = append(out, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case c == '=': // optional sugar: PEAKS = 2
			i++
		case isWordByte(c):
			j := i
			for j < n && isWordByte(src[j]) {
				j++
			}
			out = append(out, token{kind: tokWord, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("querylang: unexpected %q at position %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

// isWordByte reports bytes allowed inside identifiers/keywords. A '-' may
// appear inside a word ("ecg-001") but never starts one — the lexer's
// dispatch sends a leading '-' to the number branch first.
func isWordByte(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
