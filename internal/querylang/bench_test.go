package querylang

import (
	"testing"

	"seqrep/internal/core"
	"seqrep/internal/synth"
)

func benchDB(b *testing.B) *core.DB {
	b.Helper()
	db, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := db.Ingest(string(rune('a'+i%26))+string(rune('0'+i/26)), fever.ShiftValue(float64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	src := `MATCH SHAPE LIKE a0 PEAKS 1 HEIGHT 0.25 SPACING 0.3`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPeaks(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, `MATCH PEAKS 2`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPattern(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, `MATCH PATTERN "[FD]*(U+F*D[FD]*){2}(U+F*)?"`); err != nil {
			b.Fatal(err)
		}
	}
}
