package querylang

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"seqrep/internal/core"
)

func TestParseBounds(t *testing.T) {
	good := map[string]string{
		`MATCH VALUE LIKE two LIMIT 5`:                      `MATCH VALUE LIKE two LIMIT 5`,
		`match value like two limit 5`:                      `MATCH VALUE LIKE two LIMIT 5`,
		`MATCH DISTANCE LIKE two TOP 3 BY DISTANCE`:         `MATCH DISTANCE LIKE two METRIC l2 TOP 3 BY DISTANCE`,
		`MATCH DISTANCE LIKE two LIMIT 2 TOP 3 BY DISTANCE`: `MATCH DISTANCE LIKE two METRIC l2 TOP 3 BY DISTANCE LIMIT 2`,
		`MATCH PEAKS 2 TOP 1 BY DISTANCE`:                   `MATCH PEAKS 2 TOP 1 BY DISTANCE`,
		`MATCH PATTERN "UFD" LIMIT 1`:                       `MATCH PATTERN "UFD" LIMIT 1`,
		`FIND PATTERN "U+D" LIMIT 2`:                        `FIND PATTERN "U+D" LIMIT 2`,
		`MATCH INTERVAL 8 +- 1 LIMIT 3`:                     `MATCH INTERVAL 8 +- 1 LIMIT 3`,
		`EXPLAIN MATCH SHAPE LIKE two TOP 2 BY DISTANCE`:    `EXPLAIN MATCH SHAPE LIKE two TOP 2 BY DISTANCE`,
	}
	for src, want := range good {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := q.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", src, got, want)
		}
	}

	bad := []string{
		`MATCH VALUE LIKE two LIMIT`,
		`MATCH VALUE LIKE two LIMIT 0`,
		`MATCH VALUE LIKE two LIMIT -1`,
		`MATCH VALUE LIKE two LIMIT 2.5`,
		`MATCH VALUE LIKE two LIMIT 5 LIMIT 6`,
		`MATCH VALUE LIKE two TOP 3`,             // missing BY DISTANCE
		`MATCH VALUE LIKE two TOP 3 BY`,          // missing DISTANCE
		`MATCH VALUE LIKE two TOP 0 BY DISTANCE`, // zero K
		`MATCH VALUE LIKE two TOP 3 BY DISTANCE TOP 4 BY DISTANCE`,
		`MATCH PATTERN "UFD" TOP 3 BY DISTANCE`, // kind without deviations
		`FIND PATTERN "U" TOP 1 BY DISTANCE`,
		`MATCH INTERVAL 8 TOP 1 BY DISTANCE`,
		`LIMIT 5`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}

	// Identifiers spelled like the new keywords must quote to round-trip.
	for _, id := range []string{"limit", "top", "by", "within", "error", "approx"} {
		q := &ValueQuery{ExemplarID: id, Eps: -1, MaxError: -1}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of quoted %q: %v", id, err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Errorf("identifier %q did not round-trip: %q -> %+v", id, q.String(), q2)
		}
	}
}

func TestExecBounds(t *testing.T) {
	db := testDB(t)
	full, err := Exec(db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25`)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) < 2 {
		t.Fatalf("unbounded answer too small: %v", full.IDs)
	}

	// TOP n ≡ sort + truncate (the unbounded result is already sorted).
	top, err := Exec(db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25 TOP 1 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top.Matches, full.Matches[:1]) {
		t.Errorf("TOP 1 = %+v, want %+v", top.Matches, full.Matches[:1])
	}
	if top.Stats == nil || !top.Stats.Truncated {
		t.Errorf("TOP 1 stats = %+v, want truncated", top.Stats)
	}

	// LIMIT keeps a subset of the unbounded answer and reports truncation.
	lim, err := Exec(db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Matches) != 1 {
		t.Fatalf("LIMIT 1 returned %d matches", len(lim.Matches))
	}
	members := map[string]bool{}
	for _, id := range full.IDs {
		members[id] = true
	}
	if !members[lim.Matches[0].ID] {
		t.Errorf("LIMIT result %q not in unbounded answer %v", lim.Matches[0].ID, full.IDs)
	}

	// TOP without EPS = pure nearest-neighbour (unbounded radius): the
	// exemplar's own record is the nearest.
	nn, err := Exec(db, `MATCH DISTANCE LIKE two TOP 1 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn.IDs) != 1 || nn.IDs[0] != "two" {
		t.Errorf("TOP 1 without EPS = %v, want [two]", nn.IDs)
	}

	// Fixed-path kinds: materialize, truncate, count the dropped tail.
	allPeaks, err := Exec(db, `MATCH PEAKS 2 TOLERANCE 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(allPeaks.IDs) < 2 {
		t.Fatalf("peaks answer too small: %v", allPeaks.IDs)
	}
	cut, err := Exec(db, `MATCH PEAKS 2 TOLERANCE 1 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Matches) != 1 || cut.Dropped != len(allPeaks.IDs)-1 {
		t.Errorf("peaks LIMIT 1: matches=%d dropped=%d (full %d)", len(cut.Matches), cut.Dropped, len(allPeaks.IDs))
	}
	if !reflect.DeepEqual(cut.Matches[0], allPeaks.Matches[0]) {
		t.Errorf("peaks LIMIT kept %+v, want first of %+v", cut.Matches[0], allPeaks.Matches[0])
	}
}

func TestWithLimit(t *testing.T) {
	cases := map[string]string{
		`MATCH VALUE LIKE two`:                   `MATCH VALUE LIKE two LIMIT 10`,
		`MATCH VALUE LIKE two LIMIT 3`:           `MATCH VALUE LIKE two LIMIT 3`,  // tighter wins
		`MATCH VALUE LIKE two LIMIT 50`:          `MATCH VALUE LIKE two LIMIT 10`, // looser tightened
		`MATCH VALUE LIKE two TOP 5 BY DISTANCE`: `MATCH VALUE LIKE two TOP 5 BY DISTANCE LIMIT 10`,
		`EXPLAIN MATCH PEAKS 2`:                  `EXPLAIN MATCH PEAKS 2 LIMIT 10`,
		`MATCH PATTERN "UFD"`:                    `MATCH PATTERN "UFD" LIMIT 10`,
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := WithLimit(q, 10).String(); got != want {
			t.Errorf("WithLimit(%q, 10) = %q, want %q", src, got, want)
		}
	}
	q, err := Parse(`MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if WithLimit(q, 0) != q {
		t.Error("WithLimit(q, 0) did not return q unchanged")
	}
}

func TestRunStream(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()

	// Streamed similarity statement: matches arrive via yield, the result
	// carries kind + stats only.
	q, err := Parse(`MATCH DISTANCE LIKE two METRIC l2 EPS 25 TOP 2 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []core.Match
	res, err := RunStream(ctx, db, q, func(m core.Match) bool {
		streamed = append(streamed, m)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "distance" || res.Stats == nil || len(res.Matches) != 0 {
		t.Fatalf("stream result = %+v", res)
	}
	want, err := Exec(db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25 TOP 2 BY DISTANCE`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, want.Matches) {
		t.Errorf("streamed %+v, want %+v", streamed, want.Matches)
	}

	// Yield returning false stops the stream without error.
	seen := 0
	if _, err := RunStream(ctx, db, q, func(core.Match) bool { seen++; return false }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("stopped stream yielded %d matches", seen)
	}

	// Materialized kinds still deliver matches through yield...
	pq, err := Parse(`MATCH PEAKS 2 TOLERANCE 1`)
	if err != nil {
		t.Fatal(err)
	}
	streamed = nil
	res, err = RunStream(ctx, db, pq, func(m core.Match) bool {
		streamed = append(streamed, m)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 || len(res.Matches) != 0 {
		t.Errorf("peaks stream: %d yielded, result %+v", len(streamed), res)
	}

	// ...and kinds without a match form keep their payload on the result.
	fq, err := Parse(`FIND PATTERN "U+F*D"`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunStream(ctx, db, fq, func(core.Match) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Errorf("find stream result lost its hits: %+v", res)
	}

	// EXPLAIN delegates and marks the result.
	eq, err := Parse(`EXPLAIN MATCH VALUE LIKE two EPS 0.1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunStream(ctx, db, eq, func(core.Match) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explain || res.Stats == nil || res.Stats.Plan != "index" {
		t.Errorf("explain stream result = %+v", res)
	}
}

func TestExecContextCancelled(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecContext(ctx, db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exec returned %v", err)
	}
	// A generous deadline changes nothing.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := ExecContext(ctx2, db, `MATCH DISTANCE LIKE two METRIC l2 EPS 25`); err != nil {
		t.Fatalf("deadline exec failed: %v", err)
	}
}
