package querylang

import "testing"

// TestCanonical pins the cache-key contract: spelling variants of one
// statement share a canonical form, distinct statements (including the
// EXPLAIN'ed variant) do not, and the canonical form is a fixed point.
func TestCanonical(t *testing.T) {
	equivalent := [][]string{
		{`match value like ecg1`, `MATCH VALUE LIKE ecg1`, `  MATCH   VALUE LIKE "ecg1"  `},
		{`match distance like ecg1`, `MATCH DISTANCE LIKE ecg1 METRIC l2`},
		{`explain match peaks 2`, `EXPLAIN MATCH PEAKS 2`, `EXPLAIN EXPLAIN MATCH PEAKS 2`},
		{`find pattern "U+D+"`, `FIND PATTERN 'U+D+'`},
		{`match interval 135 +- 2`, `MATCH INTERVAL 135.0 +- 2.00`},
		// Bound clauses: case-insensitive keywords, number spellings and
		// clause order all canonicalize identically (the cache-key
		// stability the server depends on).
		{`MATCH VALUE LIKE ecg1 LIMIT 5`, `match value like ecg1 limit 5`, `MATCH VALUE LIKE ecg1 LIMIT 5.0`},
		{`MATCH DISTANCE LIKE ecg1 TOP 3 BY DISTANCE`, `match distance like ecg1 top 3 by distance`},
		{`MATCH PEAKS 2 TOP 3 BY DISTANCE LIMIT 5`, `MATCH PEAKS 2 LIMIT 5 TOP 3 BY DISTANCE`},
		{`explain match value like ecg1 limit 5`, `EXPLAIN MATCH VALUE LIKE ecg1 LIMIT 5`},
	}
	for _, group := range equivalent {
		first, err := Canonical(group[0])
		if err != nil {
			t.Fatalf("Canonical(%q): %v", group[0], err)
		}
		for _, src := range group[1:] {
			got, err := Canonical(src)
			if err != nil {
				t.Fatalf("Canonical(%q): %v", src, err)
			}
			if got != first {
				t.Errorf("Canonical(%q) = %q, want %q (same as %q)", src, got, first, group[0])
			}
		}
		// Fixed point: canonicalizing the canonical form changes nothing.
		again, err := Canonical(first)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", first, err)
		}
		if again != first {
			t.Errorf("canonical form is not a fixed point: %q -> %q", first, again)
		}
	}

	distinct := []string{
		`MATCH VALUE LIKE ecg1`,
		`MATCH VALUE LIKE ecg1 EPS 0.5`,
		`EXPLAIN MATCH VALUE LIKE ecg1`,
		`MATCH DISTANCE LIKE ecg1 METRIC zl2`,
		`MATCH PEAKS 2`,
		`MATCH VALUE LIKE ecg1 LIMIT 5`,
		`MATCH VALUE LIKE ecg1 LIMIT 6`,
		`MATCH VALUE LIKE ecg1 TOP 5 BY DISTANCE`,
		`MATCH VALUE LIKE ecg1 TOP 5 BY DISTANCE LIMIT 5`,
		`EXPLAIN MATCH VALUE LIKE ecg1 LIMIT 5`,
	}
	seen := map[string]string{}
	for _, src := range distinct {
		got, err := Canonical(src)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", src, err)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("distinct statements %q and %q share canonical form %q", src, prev, got)
		}
		seen[got] = src
	}

	if _, err := Canonical(`MATCH NONSENSE`); err == nil {
		t.Error("Canonical accepted an unparseable statement")
	}
}
